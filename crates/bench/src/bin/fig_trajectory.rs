//! Trajectory figure: what a long-horizon deployment actually
//! experiences. One multi-phase campaign — stable warm-up, then
//! client churn on a degraded network, then Dirichlet label drift
//! while an adaptive adversary switches from RTF trap weights to QBI
//! quantile probes — run under three defense postures:
//!
//! * `none` — the undefended federation the paper attacks,
//! * `oasis:MR` — the OASIS batch policy,
//! * `oasis:MR+dp:1,0.01` — OASIS stacked with DP-SGD.
//!
//! The table prints one row per (defense, phase) with delivery,
//! churn, the utility proxy, and the adversary's worst probe; the
//! adversary program section shows which candidate family won each
//! probe round. Full per-round trajectories land as schema-v1 JSONL
//! under `out/` (validated in CI by `tools/trajectory_check`).
//!
//! ```text
//! cargo run --release -p oasis-bench --bin fig_trajectory -- [--quick | --full]
//! ```

use oasis_bench::{banner, out_path, run_campaign, CampaignSpec, DefenseSpec, Scale, Workload};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Trajectory",
        "privacy and utility over a churning, drifting campaign",
        scale,
    );

    // Phase rounds and attack sizes by scale; the shape (plain →
    // churn → drift + adaptive adversary) is scale-invariant.
    let (per_phase, neurons, eval_every) = match scale {
        Scale::Quick => (3usize, 32usize, 2usize),
        Scale::Default => (10, 128, 5),
        Scale::Full => (34, 256, 5),
    };
    let spec: CampaignSpec = format!(
        "campaign:{per_phase}+attack=rtf:{neurons};\
         {per_phase}+leave=0.2+join=0.3+net=sim:20,16,0.1+attack=rtf:{neurons};\
         {per_phase}+leave=0.1+join=0.3+alpha=0.5+attack=rtf:{neurons}|qbi:{neurons}"
    )
    .parse()
    .expect("trajectory campaign spec parses");
    let defenses: Vec<DefenseSpec> = ["none", "oasis:MR", "oasis:MR+dp:1,0.01"]
        .iter()
        .map(|s| s.parse().expect("figure defense parses"))
        .collect();
    let clients = 24;
    let seed = 7;

    println!(
        "\nCampaign {spec}\n({clients} clients on {}, adversary probed every {eval_every} \
         round(s), leak threshold 60 dB):",
        Workload::ImageNette
    );
    println!(
        "{:>22} {:>6} {:>10} {:>8} {:>10} {:>12} {:>9} {:>14}",
        "defense", "phase", "delivered", "churned", "acc proxy", "peak PSNR", "leak max", "won by"
    );
    for defense in &defenses {
        let runner = run_campaign(
            spec.clone(),
            defense.clone(),
            Workload::ImageNette,
            scale,
            clients,
            seed,
            eval_every,
        )
        .expect("trajectory campaign runs");
        for phase in 0..spec.phases().len() {
            let records: Vec<_> = runner
                .records()
                .iter()
                .filter(|r| r.phase == phase)
                .collect();
            if records.is_empty() {
                continue;
            }
            let delivered: usize = records.iter().map(|r| r.delivered).sum();
            let cohort: usize = records.iter().map(|r| r.cohort).sum();
            let churned: usize = records.iter().map(|r| r.churn_left + r.churn_joined).sum();
            let acc = records.iter().map(|r| r.accuracy_proxy).sum::<f64>() / records.len() as f64;
            let peak = records
                .iter()
                .filter(|r| r.mean_psnr.is_some())
                .max_by(|a, b| a.mean_psnr.partial_cmp(&b.mean_psnr).expect("finite PSNRs"));
            let (psnr, leak, winner) = match peak {
                Some(r) => (
                    format!("{:.1} dB", r.mean_psnr.unwrap_or(0.0)),
                    format!(
                        "{:.0}%",
                        records
                            .iter()
                            .filter_map(|r| r.leak_rate)
                            .fold(0.0f64, f64::max)
                            * 100.0
                    ),
                    r.attack.clone().unwrap_or_default(),
                ),
                None => ("-".into(), "-".into(), "-".into()),
            };
            println!(
                "{:>22} {:>6} {:>9}% {:>8} {:>10.3} {:>12} {:>9} {:>14}",
                defense.to_string(),
                phase,
                (delivered * 100).checked_div(cohort).unwrap_or(0),
                churned,
                acc,
                psnr,
                leak,
                winner,
            );
        }
        let label = defense.to_string();
        let file = format!(
            "fig_trajectory_{}.jsonl",
            label.replace([':', '+', ','], "-")
        );
        let path = out_path(&file);
        runner
            .trajectory(&label)
            .write(&path)
            .expect("trajectory JSONL writes");
        println!("{:>22} trajectory -> {}", "", path.display());
    }

    println!("\nExpected shape: undefended, the adversary reconstructs throughout");
    println!("and switches to whichever family leaks harder once QBI joins its");
    println!("program; under oasis:MR the peak PSNR collapses below the leak");
    println!("threshold, and stacking dp:1,0.01 pins it there while costing some");
    println!("of the utility proxy. Churn and drift shake delivery and utility,");
    println!("never privacy: the defense, not the dynamics, decides what leaks.");
}
