//! Figure 4: average PSNR of CAH reconstructions over the (batch size
//! × attacked neurons) grid, per dataset, without defense.

use oasis_bench::{
    banner, calibration_images, pooled_attack_psnrs, CahAttack, Scale, Workload,
    DEFAULT_ACTIVATION_TARGET,
};
use oasis_fl::IdentityPreprocessor;
use oasis_metrics::Summary;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 4", "CAH average PSNR grid (undefended)", scale);

    for workload in [Workload::ImageNette, Workload::Cifar100] {
        let batches = scale.grid_batches();
        let neurons = scale.grid_neurons();
        println!("\n--- {} ---", workload.label());
        print!("{:>7}", "B \\ n");
        for &n in &neurons {
            print!("{n:>9}");
        }
        println!();
        let max_batch = *batches.iter().max().expect("non-empty grid");
        let dataset = workload.dataset(scale, max_batch, 102);
        let calib = calibration_images(workload, scale, 384);
        let mut best: Vec<(usize, usize, f64)> = Vec::new();
        for &b in &batches {
            print!("{b:>7}");
            let mut row_best = (0usize, f64::MIN);
            for &n in &neurons {
                let attack =
                    CahAttack::calibrated(n, DEFAULT_ACTIVATION_TARGET, &calib, 0xCA11)
                        .expect("calibration");
                let psnrs = pooled_attack_psnrs(
                    &attack,
                    &dataset,
                    b,
                    &IdentityPreprocessor,
                    scale.trials(),
                    40_000 + b as u64 * 19 + n as u64,
                );
                let mean = Summary::from_values(&psnrs).mean;
                if mean > row_best.1 {
                    row_best = (n, mean);
                }
                print!("{mean:>9.2}");
            }
            println!();
            best.push((b, row_best.0, row_best.1));
        }
        println!("strongest configuration per batch size:");
        for (b, n, mean) in best {
            println!("  B = {b:>4}: n = {n:>5} with mean PSNR {mean:.2} dB");
        }
    }
    println!("\nExpected shape (paper): strong reconstruction at small batches,");
    println!("sharp decline as the batch grows (trap-neuron collisions).");
}
