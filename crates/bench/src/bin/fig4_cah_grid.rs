//! Figure 4: average PSNR of CAH reconstructions over the (batch size
//! × attacked neurons) grid, per dataset, without defense.

use oasis_bench::{attack_grid, banner, AttackSpec, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 4", "CAH average PSNR grid (undefended)", scale);
    attack_grid(scale, AttackSpec::cah(0), 102, 40_000, 384);
    println!("\nExpected shape (paper): strong reconstruction at small batches,");
    println!("sharp decline as the batch grows (trap-neuron collisions).");
}
