//! `trajectory_check` — validate a campaign trajectory JSONL file.
//!
//! ```text
//! trajectory_check <trajectory.jsonl>... [--summary] [--min-rounds N]
//! ```
//!
//! Checks the schema-v1 invariants [`oasis_campaign::validate_trajectory`]
//! promises: a version-1 meta line first, contiguous rounds from 0,
//! monotonic phases, `delivered + dropped == cohort`, a live
//! population every round, a utility proxy in (0, 1], and
//! all-or-none adversary probe fields. `--summary` prints the
//! per-file round/phase/probe/churn counts. Exit 1 on any violation,
//! so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use oasis_campaign::validate_trajectory;

const USAGE: &str = "trajectory_check <trajectory.jsonl>... [--summary] [--min-rounds N]";

fn main() -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut summary = false;
    let mut min_rounds = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--summary" => summary = true,
            "--min-rounds" => {
                min_rounds = match it.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("trajectory_check: --min-rounds needs a number\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => paths.push(PathBuf::from(other)),
            other => {
                eprintln!("trajectory_check: unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if paths.is_empty() {
        eprintln!("trajectory_check: no trajectory file given\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut failures = 0u32;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trajectory_check: cannot read {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        match validate_trajectory(&text) {
            Ok(s) if s.rounds < min_rounds => {
                eprintln!(
                    "trajectory_check: {}: only {} round(s), expected >= {min_rounds}",
                    path.display(),
                    s.rounds
                );
                failures += 1;
            }
            Ok(s) => {
                println!(
                    "{}: ok ({} rounds, {} phases, {} probed, {} churn events)",
                    path.display(),
                    s.rounds,
                    s.phases,
                    s.probed_rounds,
                    s.churn_events
                );
                if summary {
                    println!(
                        "  rounds={} phases={} probed_rounds={} churn_events={}",
                        s.rounds, s.phases, s.probed_rounds, s.churn_events
                    );
                }
            }
            Err(e) => {
                eprintln!("trajectory_check: {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
