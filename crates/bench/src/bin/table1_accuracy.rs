//! Table I: model accuracy when training **with** each OASIS
//! transformation vs **without**.
//!
//! The paper trains ResNet-18 (ImageNet-10: 100 epochs, CIFAR100: 120
//! epochs, Adam lr 1e-3). This reproduction trains the ResNet-lite of
//! `oasis-nn` with Adam on the synthetic stand-ins at a reduced epoch
//! budget; the claim under test is *relative*: OASIS imposes no major
//! accuracy degradation.

use oasis::{Oasis, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_bench::{banner, Scale, Workload};
use oasis_fl::{train_centralized, BatchStage, IdentityPreprocessor};
use oasis_nn::{resnet_lite, Adam};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    workload: Workload,
    classes: usize,
    per_class: usize,
    side: usize,
    epochs: usize,
    weight_decay: f32,
}

fn main() {
    let scale = Scale::from_args();
    banner("Table I", "model accuracy with vs without OASIS", scale);

    let (epochs, imagenette_pc, cifar_pc, base) = match scale {
        Scale::Quick => (1usize, 12usize, 3usize, 4usize),
        Scale::Default => (5, 30, 8, 8),
        Scale::Full => (16, 80, 16, 12),
    };
    let setups = [
        Setup {
            workload: Workload::ImageNette,
            classes: 10,
            per_class: imagenette_pc,
            side: match scale {
                Scale::Quick => 16,
                _ => 32,
            },
            epochs,
            weight_decay: 1e-5, // paper: 1e-5 on ImageNet
        },
        Setup {
            workload: Workload::Cifar100,
            classes: 100,
            per_class: cifar_pc,
            side: 16,
            epochs,
            weight_decay: 1e-2, // paper: 1e-2 on CIFAR100
        },
    ];

    let policies = [
        PolicyKind::MajorRotation,
        PolicyKind::MinorRotation,
        PolicyKind::Shearing,
        PolicyKind::HorizontalFlip,
        PolicyKind::VerticalFlip,
        PolicyKind::MajorRotationShearing,
        PolicyKind::Without,
    ];

    for setup in setups {
        let ds = oasis_data::synthetic_dataset(
            setup.workload.label(),
            setup.classes,
            setup.per_class,
            setup.side,
            0x7AB1,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = ds.split(0.8, &mut rng);
        println!(
            "\n--- {} ({} classes, {} train / {} test, {} epochs, {}px) ---",
            setup.workload.label(),
            setup.classes,
            train.len(),
            test.len(),
            setup.epochs,
            setup.side
        );
        println!("{:>28} {:>12}", "Transformation", "Accuracy(%)");
        for kind in policies {
            let mut model = resnet_lite(
                (3, setup.side, setup.side),
                base,
                setup.classes,
                &mut StdRng::seed_from_u64(7),
            );
            // Paper: Adam, lr 1e-3.
            let mut opt = Adam::new(1e-3, setup.weight_decay);
            let defense = Oasis::new(OasisConfig::policy(kind));
            let idy = IdentityPreprocessor;
            let pre: &dyn BatchStage = if kind == PolicyKind::Without {
                &idy
            } else {
                &defense
            };
            let report = train_centralized(
                &mut model,
                &mut opt,
                &train,
                &test,
                pre,
                setup.epochs,
                32,
                0x7AB1E,
            )
            .expect("training run");
            println!(
                "{:>28} {:>12.1}",
                kind.abbrev(),
                report.test_accuracy * 100.0
            );
        }
    }
    println!("\nExpected shape (paper Table I): accuracy within a few points of");
    println!("the Without-OASIS row for every transformation.");
}
