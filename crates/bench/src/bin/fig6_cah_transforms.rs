//! Figure 6: PSNR of images reconstructed by the **CAH attack** under
//! shearing, major rotation, and their integration.
//!
//! Paper settings: ImageNet (B, n) = (8, 100) and (64, 700);
//! CIFAR100 (B, n) = (8, 300) and (64, 600). The paper's finding: at
//! B = 8, MR or SH alone leave many perfect reconstructions (high
//! outliers); the MR+SH integration collapses the PSNR.
//!
//! A large calibration set (384 images) keeps per-row quantile noise
//! small; noisy quantiles create under-activated rows that stay
//! singleton-prone even under MR+SH.

use oasis_bench::{banner, figure6_policies, transform_comparison, AttackSpec, Scale, Workload};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 6",
        "CAH attack vs transformations incl. MR+SH integration",
        scale,
    );

    let configs = [
        (Workload::ImageNette, 8usize, 100usize),
        (Workload::ImageNette, 64, 700),
        (Workload::Cifar100, 8, 300),
        (Workload::Cifar100, 64, 600),
    ];
    transform_comparison(
        scale,
        AttackSpec::cah(0),
        &configs,
        &figure6_policies(),
        43,
        8_000,
        384,
        150,
    );
    println!("\nExpected shape (paper): WO high; at B=8 MR and SH alone keep high");
    println!("maxima (leaked samples); MR+SH collapses PSNR at both batch sizes.");
}
