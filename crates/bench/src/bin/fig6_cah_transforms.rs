//! Figure 6: PSNR of images reconstructed by the **CAH attack** under
//! shearing, major rotation, and their integration.
//!
//! Paper settings: ImageNet (B, n) = (8, 100) and (64, 700);
//! CIFAR100 (B, n) = (8, 300) and (64, 600). The paper's finding: at
//! B = 8, MR or SH alone leave many perfect reconstructions (high
//! outliers); the MR+SH integration collapses the PSNR.

use oasis::{Oasis, OasisConfig};
use oasis_bench::{
    banner, calibration_images, figure6_policies, pooled_attack_psnrs, CahAttack, Scale, Workload,
    DEFAULT_ACTIVATION_TARGET,
};
use oasis_fl::{BatchPreprocessor, IdentityPreprocessor};
use oasis_metrics::Summary;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 6",
        "CAH attack vs transformations incl. MR+SH integration",
        scale,
    );

    let configs = [
        (Workload::ImageNette, 8usize, 100usize),
        (Workload::ImageNette, 64, 700),
        (Workload::Cifar100, 8, 300),
        (Workload::Cifar100, 64, 600),
    ];

    for (workload, batch, neurons) in configs {
        let neurons = match scale {
            Scale::Quick => neurons.min(150),
            _ => neurons,
        };
        println!("\n--- {} | B = {batch}, n = {neurons} ---", workload.label());
        let dataset = workload.dataset(scale, batch, 43);
        // A large calibration set keeps per-row quantile noise small;
        // noisy quantiles create under-activated rows that stay
        // singleton-prone even under MR+SH.
        let calib = calibration_images(workload, scale, 384);
        let attack =
            CahAttack::calibrated(neurons, DEFAULT_ACTIVATION_TARGET, &calib, 0xCA11)
                .expect("calibration");
        for kind in figure6_policies() {
            let defense = Oasis::new(OasisConfig::policy(kind));
            let idy = IdentityPreprocessor;
            let def: &dyn BatchPreprocessor =
                if kind == oasis_augment::PolicyKind::Without { &idy } else { &defense };
            let psnrs =
                pooled_attack_psnrs(&attack, &dataset, batch, def, scale.trials(), 8_000 + batch as u64);
            let summary = Summary::from_values(&psnrs);
            println!("{:>6}  {}", kind.abbrev(), summary);
        }
    }
    println!("\nExpected shape (paper): WO high; at B=8 MR and SH alone keep high");
    println!("maxima (leaked samples); MR+SH collapses PSNR at both batch sizes.");
}
