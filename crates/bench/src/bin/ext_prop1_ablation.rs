//! Extension: executable Proposition 1.
//!
//! For each policy, measures (a) the activation-set protection rate
//! predicted by Proposition 1 against the actual malicious layer and
//! (b) the measured leak rate (fraction of originals reconstructed
//! above 60 dB) — the theory/practice correlation behind the paper's
//! defense argument.

use oasis::{activation_set_analysis, Oasis, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_bench::{
    banner, calibration_images, run_attack, ActiveAttack, CahAttack, RtfAttack, Scale, Workload,
    DEFAULT_ACTIVATION_TARGET,
};
use oasis_nn::Linear;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Extension: Prop 1",
        "activation-set overlap vs measured leakage",
        scale,
    );

    let workload = Workload::ImageNette;
    let dataset = workload.dataset(scale, 8, 11);
    let calib = calibration_images(workload, scale, 256);
    let batch = dataset.sample_batch(8, &mut StdRng::seed_from_u64(4));

    let rtf = RtfAttack::calibrated(256, &calib).expect("rtf calibration");
    let cah = CahAttack::calibrated(100, DEFAULT_ACTIVATION_TARGET, &calib, 0xCA11)
        .expect("cah calibration");

    for (label, attack) in [("RTF", &rtf as &dyn ActiveAttack), ("CAH", &cah)] {
        println!("\n--- {label} attack, B = 8 ---");
        println!(
            "{:>7} {:>18} {:>14} {:>12}",
            "policy", "Prop1 protection", "leak rate", "mean PSNR"
        );
        let model = attack
            .build_model(batch.images[0].dims(), dataset.num_classes(), 9)
            .expect("model");
        let layer = model.layer_as::<Linear>(0).expect("malicious layer");
        for kind in PolicyKind::all() {
            let defense = Oasis::new(OasisConfig::policy(kind));
            let analysis = activation_set_analysis(layer, &batch, &defense);
            let stack = oasis_fl::DefenseStack::of(defense);
            let outcome =
                run_attack(attack, &batch, &stack, dataset.num_classes(), 9).expect("attack");
            println!(
                "{:>7} {:>17.0}% {:>13.0}% {:>12.2}",
                kind.abbrev(),
                analysis.protection_rate * 100.0,
                outcome.leak_rate(60.0) * 100.0,
                outcome.mean_psnr(),
            );
        }
    }
    println!("\nExpected shape: high Prop-1 protection ⇒ low leak rate. RTF:");
    println!("measurement-preserving policies protect fully. CAH: only the");
    println!("MR+SH integration pushes both columns to the protected side.");
}
