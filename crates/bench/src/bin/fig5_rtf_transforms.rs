//! Figure 5: PSNR of images reconstructed by the **RTF attack** under
//! each OASIS transformation, at the paper's strongest attack
//! configurations.
//!
//! Paper settings: ImageNet (B, n) = (8, 900) and (64, 800);
//! CIFAR100 (B, n) = (8, 500) and (64, 600). One boxplot per policy
//! {WO, MR, mR, SH, HFlip, VFlip}; the paper's green triangle is the
//! `mean` column here.

use oasis::{Oasis, OasisConfig};
use oasis_bench::{
    banner, calibration_images, figure5_policies, pooled_attack_psnrs, RtfAttack, Scale, Workload,
};
use oasis_fl::{BatchPreprocessor, IdentityPreprocessor};
use oasis_metrics::Summary;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 5",
        "RTF attack vs OASIS transformations (PSNR boxplots)",
        scale,
    );

    // (workload, batch, neurons) — from the paper's caption.
    let configs = [
        (Workload::ImageNette, 8usize, 900usize),
        (Workload::ImageNette, 64, 800),
        (Workload::Cifar100, 8, 500),
        (Workload::Cifar100, 64, 600),
    ];

    for (workload, batch, neurons) in configs {
        let neurons = match scale {
            Scale::Quick => neurons.min(200),
            _ => neurons,
        };
        println!("\n--- {} | B = {batch}, n = {neurons} ---", workload.label());
        let dataset = workload.dataset(scale, batch, 42);
        let calib = calibration_images(workload, scale, 128);
        let attack = RtfAttack::calibrated(neurons, &calib).expect("calibration");
        for kind in figure5_policies() {
            let defense = Oasis::new(OasisConfig::policy(kind));
            let idy = IdentityPreprocessor;
            let def: &dyn BatchPreprocessor =
                if kind == oasis_augment::PolicyKind::Without { &idy } else { &defense };
            let psnrs =
                pooled_attack_psnrs(&attack, &dataset, batch, def, scale.trials(), 7_000 + batch as u64);
            let summary = Summary::from_values(&psnrs);
            println!("{:>6}  {}", kind.abbrev(), summary);
        }
    }
    println!("\nExpected shape (paper): WO ≈ perfect-reconstruction band;");
    println!("every transform collapses PSNR; MR lowest; flips slightly above MR.");
}
