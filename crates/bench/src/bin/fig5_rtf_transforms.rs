//! Figure 5: PSNR of images reconstructed by the **RTF attack** under
//! each OASIS transformation, at the paper's strongest attack
//! configurations.
//!
//! Paper settings: ImageNet (B, n) = (8, 900) and (64, 800);
//! CIFAR100 (B, n) = (8, 500) and (64, 600). One boxplot per policy
//! {WO, MR, mR, SH, HFlip, VFlip}; the paper's green triangle is the
//! `mean` column here.

use oasis_bench::{banner, figure5_policies, transform_comparison, AttackSpec, Scale, Workload};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 5",
        "RTF attack vs OASIS transformations (PSNR boxplots)",
        scale,
    );

    // (workload, batch, neurons) — from the paper's caption.
    let configs = [
        (Workload::ImageNette, 8usize, 900usize),
        (Workload::ImageNette, 64, 800),
        (Workload::Cifar100, 8, 500),
        (Workload::Cifar100, 64, 600),
    ];
    transform_comparison(
        scale,
        AttackSpec::rtf(0),
        &configs,
        &figure5_policies(),
        42,
        7_000,
        128,
        200,
    );
    println!("\nExpected shape (paper): WO ≈ perfect-reconstruction band;");
    println!("every transform collapses PSNR; MR lowest; flips slightly above MR.");
}
