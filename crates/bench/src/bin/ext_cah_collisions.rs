//! Extension: CAH singleton-collision ablation.
//!
//! The CAH attack leaks a sample exactly when some trap neuron is
//! activated by that sample *alone*. This binary counts, for each
//! OASIS policy, how many trap neurons hold a singleton original —
//! the mechanism behind Figure 6 — and contrasts the measured counts
//! with the binomial model `n·p·(1−p)^{m−1}`.

use oasis::{Oasis, OasisConfig};
use oasis_bench::{
    banner, calibration_images, figure6_policies, ActiveAttack, CahAttack, Scale, Workload,
    DEFAULT_ACTIVATION_TARGET,
};
use oasis_fl::BatchStage;
use oasis_nn::{Layer, Linear, Mode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Extension: CAH collisions",
        "singleton trap neurons per policy vs binomial model",
        scale,
    );

    for (workload, batch, neurons) in [
        (Workload::Cifar100, 8usize, 300usize),
        (Workload::ImageNette, 8, 100),
    ] {
        println!(
            "\n--- {} | B = {batch}, n = {neurons} ---",
            workload.label()
        );
        let dataset = workload.dataset(scale, batch, 43);
        let calib = calibration_images(workload, scale, 384);
        let attack = CahAttack::calibrated(neurons, DEFAULT_ACTIVATION_TARGET, &calib, 0xCA11)
            .expect("calibration");
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let b = dataset.sample_batch(batch, &mut rng);

        println!(
            "{:>6} {:>6} {:>10} {:>12} {:>12} {:>10}",
            "policy", "m", "singleton", "orig-single", "model E", "mean p"
        );
        for kind in figure6_policies() {
            let defense = Oasis::new(OasisConfig::policy(kind));
            let mut drng = StdRng::seed_from_u64(1);
            let processed = defense.process(&b, &mut drng);
            let m = processed.len();
            let mut model = attack
                .build_model(b.images[0].dims(), dataset.num_classes(), 7)
                .expect("model");
            let x = processed.to_matrix();
            let z = model.forward(&x, Mode::Train).expect("fwd"); // not used directly
            let _ = z;
            let lin = model.layer_as::<Linear>(0).expect("malicious layer");
            // Activation matrix from pre-activations.
            let pre = x
                .matmul_nt(lin.weight())
                .and_then(|t| t.add_row_broadcast(lin.bias()))
                .expect("pre-activations");
            let mut singleton = 0usize;
            let mut orig_single = 0usize;
            let mut active_total = 0usize;
            for neuron in 0..neurons {
                let mut count = 0usize;
                let mut who = 0usize;
                for img in 0..m {
                    if pre.get(&[img, neuron]).expect("in bounds") > 0.0 {
                        count += 1;
                        who = img;
                    }
                }
                active_total += count;
                if count == 1 {
                    singleton += 1;
                    if who < batch {
                        orig_single += 1;
                    }
                }
            }
            let p_emp = active_total as f64 / (neurons * m) as f64;
            // Binomial model: each of the `batch` originals is a
            // singleton at a given neuron w.p. p·(1−p)^{m−1}.
            let model_e = neurons as f64 * batch as f64 * p_emp * (1.0 - p_emp).powi(m as i32 - 1);
            println!(
                "{:>6} {:>6} {:>10} {:>12} {:>12.2} {:>10.3}",
                kind.abbrev(),
                m,
                singleton,
                orig_single,
                model_e,
                p_emp
            );
        }
    }
}
