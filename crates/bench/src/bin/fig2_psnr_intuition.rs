//! Figure 2: the PSNR intuition panel — one sample reconstructed by
//! RTF without OASIS (≈ perfect, paper: 139.17 dB) and with OASIS
//! major rotation (unrecognizable, paper: 15.41 dB), plus the rendered
//! images under `out/`.

use oasis::{Oasis, OasisConfig};
use oasis_augment::PolicyKind;
use oasis_bench::{banner, calibration_images, out_path, run_attack, RtfAttack, Scale, Workload};
use oasis_data::Batch;
use oasis_fl::DefenseStack;
use oasis_image::io;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 2", "PSNR visual intuition (one sample, RTF)", scale);

    let workload = Workload::ImageNette;
    let dataset = workload.dataset(scale, 8, 2024);
    let calib = calibration_images(workload, scale, 128);
    let attack = RtfAttack::calibrated(256, &calib).expect("calibration");
    let batch = Batch::from_items(dataset.items()[..4].to_vec());

    let undefended = run_attack(
        &attack,
        &batch,
        &DefenseStack::identity(),
        dataset.num_classes(),
        7,
    )
    .expect("run");
    let defense = DefenseStack::of(Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation)));
    let defended = run_attack(&attack, &batch, &defense, dataset.num_classes(), 7).expect("run");

    println!("\nSample 0 original mean: {:.4}", batch.images[0].mean());
    println!(
        "reconstruction without OASIS: best PSNR {:.2} dB (paper: 139.17 dB)",
        undefended.per_original_best[0]
    );
    println!(
        "reconstruction with OASIS/MR: best PSNR {:.2} dB (paper: 15.41 dB)",
        defended.per_original_best[0]
    );

    io::write_ppm(out_path("fig2_original.ppm"), &batch.images[0]).expect("write");
    if let Some(m) = undefended.matches.iter().find(|m| m.original_idx == 0) {
        io::write_ppm(
            out_path("fig2_recon_without_oasis.ppm"),
            &undefended.reconstructions[m.recon_idx],
        )
        .expect("write");
    }
    if let Some(m) = defended.matches.iter().find(|m| m.original_idx == 0) {
        io::write_ppm(
            out_path("fig2_recon_with_oasis.ppm"),
            &defended.reconstructions[m.recon_idx],
        )
        .expect("write");
    }
    println!("\nimages written to out/fig2_*.ppm");
}
