//! Figure 13: gradient inversion on linear models (paper §IV-D).
//!
//! A single-layer softmax model, batches with unique labels; the
//! server inverts each class row. PSNR boxplots per transformation at
//! B ∈ {8, 64} on both datasets.
//!
//! Note: unique labels at B = 64 require ≥64 classes, so this
//! experiment uses the 100-class synthetic workloads at each
//! resolution (the paper has ImageNet's 1000-class label space).

use oasis_bench::{banner, figure5_policies, transform_comparison, AttackSpec, Scale, Workload};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 13", "gradient inversion on linear models", scale);

    let configs = [
        (Workload::ImageNette100c, 8usize, 0usize),
        (Workload::ImageNette100c, 64, 0),
        (Workload::Cifar100c, 8, 0),
        (Workload::Cifar100c, 64, 0),
    ];
    transform_comparison(
        scale,
        AttackSpec::linear(),
        &configs,
        &figure5_policies(),
        1301,
        1300,
        0,
        0,
    );
    println!("\nExpected shape (paper): all transforms reduce PSNR; rotation and");
    println!("shearing beat flipping (a flipped mixture still mirrors content).");
}
