//! Figure 13: gradient inversion on linear models (paper §IV-D).
//!
//! A single-layer softmax model, batches with unique labels; the
//! server inverts each class row. PSNR boxplots per transformation at
//! B ∈ {8, 64} on both datasets.
//!
//! Note: unique labels at B = 64 require ≥64 classes, so this
//! experiment uses 100-class synthetic datasets at each workload's
//! resolution (the paper has ImageNet's 1000-class label space).

use oasis::{Oasis, OasisConfig};
use oasis_bench::{banner, figure5_policies, LinearModelAttack, Scale, Workload};
use oasis_fl::{BatchPreprocessor, IdentityPreprocessor};
use oasis_metrics::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 13", "gradient inversion on linear models", scale);

    for workload in [Workload::ImageNette, Workload::Cifar100] {
        let dataset = workload.linear_dataset(scale, 1301);
        for batch_size in [8usize, 64] {
            println!(
                "\n--- {} ({} classes) | B = {batch_size} ---",
                workload.label(),
                dataset.num_classes()
            );
            let attack = LinearModelAttack::new(dataset.num_classes()).expect("attack");
            for kind in figure5_policies() {
                let defense = Oasis::new(OasisConfig::policy(kind));
                let idy = IdentityPreprocessor;
                let def: &dyn BatchPreprocessor =
                    if kind == oasis_augment::PolicyKind::Without { &idy } else { &defense };
                let mut rng = StdRng::seed_from_u64(1300 + batch_size as u64);
                let mut pooled = Vec::new();
                for trial in 0..scale.trials().max(2) {
                    let batch = dataset.sample_batch_unique_labels(batch_size, &mut rng);
                    let outcome = oasis_bench::run_attack(
                        &attack,
                        &batch,
                        def,
                        dataset.num_classes(),
                        500 + trial as u64,
                    )
                    .expect("attack run");
                    pooled.extend(outcome.matched_psnrs);
                }
                println!("{:>6}  {}", kind.abbrev(), Summary::from_values(&pooled));
            }
        }
    }
    println!("\nExpected shape (paper): all transforms reduce PSNR; rotation and");
    println!("shearing beat flipping (a flipped mixture still mirrors content).");
}
