//! The `perf` macro-benchmark harness: a fixed, deterministic suite
//! of hot-path measurements serialized as versioned `BENCH_<suite>.json`
//! records that CI compares across commits.
//!
//! Unlike the criterion micro-benches under `benches/` (exploratory,
//! human-read), this harness is the machine-readable performance
//! record: every bench has a stable name, a fixed workload shape, and
//! a self-calibrated iteration count, and the output schema
//! round-trips through serde so `tools/bench_compare` can diff any
//! two runs. Thread count is pinned via `OASIS_THREADS` for
//! cross-machine comparability (the JSON records what was used).
//!
//! Five suites:
//!
//! * `core` — tensor/nn kernels: matmul / matmul_nt / matmul_tn at
//!   model-relevant shapes, Conv2d forward+backward. Also carries the
//!   SIMD record pairs: the lane-sensitive hot paths (matmul, q8
//!   codec, PSNR) re-run with the SIMD backend pinned to the best
//!   detected one (`_simd`) and to the scalar reference (`_scalar`)
//!   via [`simd::with_backend`], independent of `OASIS_SIMD`.
//!   Lane speedup is derived from the `_scalar`/`_simd` medians by
//!   [`simd_points`], and the CI gate ([`simd_gate`]) fails when the
//!   vector backend is slower than scalar on the same machine.
//! * `fl` — protocol macro paths: a full [`FlServer::run_round`]
//!   (raw and q8 wire), codec encode/decode, one RTF inversion step,
//!   and one `oasis:MR+dp:1,0.01` defense-stack application.
//! * `scale` — multi-core scaling: the core/fl macro-benches re-run
//!   at 1, 2, and 4 worker threads (pinned per bench via
//!   [`parallel::with_threads`], independent of `OASIS_THREADS`), as
//!   `<bench>_t<N>` records. Parallel efficiency is derived from the
//!   `_t1`/`_tN` medians by [`scale_points`], and the CI gate
//!   ([`scale_gate`]) fails when the multi-threaded run is slower
//!   than the serial one on the same machine.
//! * `pop` — population-scale rounds: one [`CohortRunner`] round
//!   (cohort 64, raw wire) sampled from 1 k / 10 k / 100 k
//!   descriptor clients, pinning rounds-per-second as the population
//!   grows. The streaming aggregator keeps server memory at two
//!   model buffers regardless of population (asserted by
//!   `pop_suite_memory_stays_bounded`), so the records should differ
//!   only by the O(population) selection shuffle.
//! * `campaign` — the long-horizon path: one full 100-round
//!   [`CampaignRunner`] campaign (three phases: plain, churn,
//!   churn + Dirichlet drift) over 16 clients, pinning
//!   rounds-per-second for the campaign engine's per-round
//!   bookkeeping (phase tracking, churn stream, population
//!   subsetting) on top of the cohort round itself.

use std::sync::Arc;
use std::time::Instant;

use oasis_attacks::{ActiveAttack, RtfAttack};
use oasis_campaign::{CampaignRunner, CampaignSetup, CampaignSpec};
use oasis_data::cifar_like_with;
use oasis_fl::{DefenseStack, FlConfig, FlServer, ModelFactory, WireConfig};
use oasis_metrics::psnr_data;
use oasis_nn::{Conv2d, Layer, Linear, Mode, Relu, Sequential};
use oasis_population::{CohortRunner, Population};
use oasis_tensor::{parallel, simd, Tensor};
use oasis_wire::{CodecSpec, NetSpec, Q8Codec, RawCodec, UpdateCodec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Version of the `BENCH_*.json` schema. Bump on breaking changes;
/// `bench_compare` refuses to diff mismatched versions.
pub const SCHEMA_VERSION: u32 = 1;

/// One benchmark's measured result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Stable bench name (the comparison key).
    pub name: String,
    /// Iterations actually timed (after self-calibration).
    pub iters: u64,
    /// Median wall-clock per iteration, nanoseconds.
    pub median_ns: u64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: u64,
    /// Work rate derived from the median (`None` when the bench has
    /// no natural unit).
    pub throughput: Option<f64>,
    /// Unit of [`BenchRecord::throughput`] (e.g. `flop/s`, `B/s`).
    pub throughput_unit: Option<String>,
}

/// A whole suite run, as serialized to `BENCH_<suite>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSuite {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Suite name (`core` or `fl`).
    pub suite: String,
    /// Worker threads the run used (see `OASIS_THREADS`).
    pub threads: usize,
    /// SIMD backend label the run resolved (see `OASIS_SIMD`); `_simd`
    /// / `_scalar` record pairs pin their own backend per bench, so
    /// this only describes the unpinned records. Empty in baselines
    /// captured before the field existed.
    #[serde(default)]
    pub simd: String,
    /// Whether the run used the reduced `--quick` calibration budget.
    pub quick: bool,
    /// Per-bench results, in suite order.
    pub results: Vec<BenchRecord>,
}

impl BenchSuite {
    /// Looks up a result by bench name.
    pub fn get(&self, name: &str) -> Option<&BenchRecord> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// A benchmark ready to run: an optional throughput denomination
/// (items of `unit` completed per iteration) plus the timed closure.
pub struct PreparedBench {
    /// `(items_per_iter, unit)` for throughput derivation.
    pub throughput: Option<(f64, &'static str)>,
    /// The routine timed per iteration.
    pub run: Box<dyn FnMut()>,
}

/// A named benchmark definition: construction is deferred so listing
/// a suite costs nothing.
pub struct BenchDef {
    /// Stable name (the comparison key across commits).
    pub name: &'static str,
    build: fn() -> PreparedBench,
}

// ---------------------------------------------------------------------
// Suite definitions
// ---------------------------------------------------------------------

/// The `core` suite: tensor and nn kernels at model-relevant shapes.
///
/// Order is fixed; names are stable comparison keys.
pub fn core_suite() -> Vec<BenchDef> {
    vec![
        BenchDef {
            name: "matmul_256",
            build: bench_matmul_256,
        },
        BenchDef {
            name: "matmul_conv_fwd",
            build: bench_matmul_conv_fwd,
        },
        BenchDef {
            name: "matmul_nt_conv_gw",
            build: bench_matmul_nt_conv_gw,
        },
        BenchDef {
            name: "matmul_tn_conv_gx",
            build: bench_matmul_tn_conv_gx,
        },
        BenchDef {
            name: "matmul_nt_linear",
            build: bench_matmul_nt_linear,
        },
        BenchDef {
            name: "conv2d_forward_b8",
            build: bench_conv_forward_b8,
        },
        BenchDef {
            name: "conv2d_backward_b8",
            build: bench_conv_backward_b8,
        },
        BenchDef {
            name: "conv2d_forward_b32",
            build: bench_conv_forward_b32,
        },
        BenchDef {
            name: "matmul_256_simd",
            build: bench_matmul_256_simd,
        },
        BenchDef {
            name: "matmul_256_scalar",
            build: bench_matmul_256_scalar,
        },
        BenchDef {
            name: "matmul_nt_linear_simd",
            build: bench_matmul_nt_linear_simd,
        },
        BenchDef {
            name: "matmul_nt_linear_scalar",
            build: bench_matmul_nt_linear_scalar,
        },
        BenchDef {
            name: "codec_q8_encode_simd",
            build: bench_codec_q8_encode_simd,
        },
        BenchDef {
            name: "codec_q8_encode_scalar",
            build: bench_codec_q8_encode_scalar,
        },
        BenchDef {
            name: "codec_q8_decode_simd",
            build: bench_codec_q8_decode_simd,
        },
        BenchDef {
            name: "codec_q8_decode_scalar",
            build: bench_codec_q8_decode_scalar,
        },
        BenchDef {
            name: "psnr_simd",
            build: bench_psnr_simd,
        },
        BenchDef {
            name: "psnr_scalar",
            build: bench_psnr_scalar,
        },
    ]
}

/// The `fl` suite: protocol round, codecs, and one attack step.
///
/// Order is fixed; names are stable comparison keys.
pub fn fl_suite() -> Vec<BenchDef> {
    vec![
        BenchDef {
            name: "fl_round_raw",
            build: bench_fl_round_raw,
        },
        BenchDef {
            name: "fl_round_raw_telem",
            build: bench_fl_round_raw_telem,
        },
        BenchDef {
            name: "fl_round_q8",
            build: bench_fl_round_q8,
        },
        BenchDef {
            name: "codec_raw_encode",
            build: bench_codec_raw_encode,
        },
        BenchDef {
            name: "codec_raw_decode",
            build: bench_codec_raw_decode,
        },
        BenchDef {
            name: "codec_q8_encode",
            build: bench_codec_q8_encode,
        },
        BenchDef {
            name: "codec_q8_decode",
            build: bench_codec_q8_decode,
        },
        BenchDef {
            name: "rtf_invert_128",
            build: bench_rtf_invert,
        },
        BenchDef {
            name: "defense_stack",
            build: bench_defense_stack,
        },
    ]
}

/// The `scale` suite: core/fl macro-benches at 1/2/4 worker threads.
///
/// Order is fixed; names are stable comparison keys. Thread count is
/// pinned per bench with [`parallel::with_threads`], so one run
/// measures every width regardless of `OASIS_THREADS`.
pub fn scale_suite() -> Vec<BenchDef> {
    vec![
        BenchDef {
            name: "fl_round_raw_t1",
            build: bench_fl_round_raw_t1,
        },
        BenchDef {
            name: "fl_round_raw_t2",
            build: bench_fl_round_raw_t2,
        },
        BenchDef {
            name: "fl_round_raw_t4",
            build: bench_fl_round_raw_t4,
        },
        BenchDef {
            name: "conv2d_forward_b32_t1",
            build: bench_conv_forward_b32_t1,
        },
        BenchDef {
            name: "conv2d_forward_b32_t2",
            build: bench_conv_forward_b32_t2,
        },
        BenchDef {
            name: "conv2d_forward_b32_t4",
            build: bench_conv_forward_b32_t4,
        },
        BenchDef {
            name: "matmul_256_t1",
            build: bench_matmul_256_t1,
        },
        BenchDef {
            name: "matmul_256_t2",
            build: bench_matmul_256_t2,
        },
        BenchDef {
            name: "matmul_256_t4",
            build: bench_matmul_256_t4,
        },
        BenchDef {
            name: "rtf_invert_128_t1",
            build: bench_rtf_invert_t1,
        },
        BenchDef {
            name: "rtf_invert_128_t2",
            build: bench_rtf_invert_t2,
        },
        BenchDef {
            name: "rtf_invert_128_t4",
            build: bench_rtf_invert_t4,
        },
    ]
}

/// The `pop` suite: one cohort-64 population round at growing
/// population sizes.
///
/// Order is fixed; names are stable comparison keys.
pub fn pop_suite() -> Vec<BenchDef> {
    vec![
        BenchDef {
            name: "pop_round_1k",
            build: bench_pop_round_1k,
        },
        BenchDef {
            name: "pop_round_10k",
            build: bench_pop_round_10k,
        },
        BenchDef {
            name: "pop_round_100k",
            build: bench_pop_round_100k,
        },
    ]
}

/// The `campaign` suite: the long-horizon campaign engine end to end.
///
/// Order is fixed; names are stable comparison keys.
pub fn campaign_suite() -> Vec<BenchDef> {
    vec![BenchDef {
        name: "campaign_100r",
        build: bench_campaign_100r,
    }]
}

/// All suite names, in run order.
pub const SUITE_NAMES: [&str; 5] = ["core", "fl", "scale", "pop", "campaign"];

/// The benches of the named suite (`core`, `fl`, `scale`, `pop`, or
/// `campaign`).
pub fn suite(name: &str) -> Option<Vec<BenchDef>> {
    match name {
        "core" => Some(core_suite()),
        "fl" => Some(fl_suite()),
        "scale" => Some(scale_suite()),
        "pop" => Some(pop_suite()),
        "campaign" => Some(campaign_suite()),
        _ => None,
    }
}

/// Retains only the benches whose name contains `filter`.
pub fn apply_filter(benches: Vec<BenchDef>, filter: &str) -> Vec<BenchDef> {
    benches
        .into_iter()
        .filter(|b| b.name.contains(filter))
        .collect()
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Self-calibrates the iteration count and times `prepared`.
///
/// One warmup iteration estimates the per-iter cost; the measured
/// loop then sizes itself to roughly the time budget (`--quick`
/// shrinks the budget, never the workload shapes, so medians stay
/// comparable across modes — just noisier).
pub fn run_prepared(name: &str, mut prepared: PreparedBench, quick: bool) -> BenchRecord {
    let budget_ns: u128 = if quick { 60_000_000 } else { 400_000_000 };
    let warmup = Instant::now();
    (prepared.run)();
    let est = warmup.elapsed().as_nanos().max(1);
    let iters = (budget_ns / est).clamp(3, 1000) as u64;
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        (prepared.run)();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let median_ns = samples[samples.len() / 2].max(1);
    let min_ns = samples[0].max(1);
    let (throughput, throughput_unit) = match prepared.throughput {
        Some((items, unit)) => (Some(items * 1e9 / median_ns as f64), Some(unit.to_string())),
        None => (None, None),
    };
    BenchRecord {
        name: name.to_string(),
        iters,
        median_ns,
        min_ns,
        throughput,
        throughput_unit,
    }
}

/// Runs a suite (optionally filtered) and collects the records.
pub fn run_suite(name: &str, filter: Option<&str>, quick: bool) -> Option<BenchSuite> {
    let mut benches = suite(name)?;
    if let Some(f) = filter {
        benches = apply_filter(benches, f);
    }
    let results = benches
        .into_iter()
        .map(|b| {
            let rec = run_prepared(b.name, (b.build)(), quick);
            eprintln!("  {}", format_record(&rec));
            rec
        })
        .collect();
    Some(BenchSuite {
        schema_version: SCHEMA_VERSION,
        suite: name.to_string(),
        threads: parallel::num_threads(),
        simd: simd::resolved().label().to_string(),
        quick,
        results,
    })
}

/// One human-readable line per record (the JSON is the machine
/// record).
pub fn format_record(r: &BenchRecord) -> String {
    let tp = match (&r.throughput, &r.throughput_unit) {
        (Some(t), Some(u)) => format!("  {:>10.3e} {u}", t),
        _ => String::new(),
    };
    format!(
        "{:<22} median {:>12} ns  min {:>12} ns  ({} iters){tp}",
        r.name, r.median_ns, r.min_ns, r.iters
    )
}

// ---------------------------------------------------------------------
// Comparison (the CI regression gate)
// ---------------------------------------------------------------------

/// Default warn threshold: median slower by more than this percent.
pub const WARN_PCT: f64 = 10.0;
/// Default fail threshold: median slower by more than this percent.
pub const FAIL_PCT: f64 = 35.0;

/// How one bench moved between baseline and current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// Within thresholds (or faster).
    Ok,
    /// Slower than the warn threshold.
    Warn,
    /// Slower than the fail threshold.
    Fail,
    /// Present in the baseline but missing from the current run —
    /// coverage silently shrank, treated as failure.
    Missing,
    /// New bench with no baseline (informational).
    New,
}

/// One bench's baseline-vs-current delta.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Bench name.
    pub name: String,
    /// Baseline median, ns (0 when [`DeltaClass::New`]).
    pub base_ns: u64,
    /// Current median, ns (0 when [`DeltaClass::Missing`]).
    pub cur_ns: u64,
    /// Signed regression percentage (positive = slower).
    pub pct: f64,
    /// Classification against the thresholds.
    pub class: DeltaClass,
}

/// Full comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Per-bench deltas, baseline order first, then new benches.
    pub deltas: Vec<Delta>,
    /// Any delta at [`DeltaClass::Warn`].
    pub warned: bool,
    /// Any delta at [`DeltaClass::Fail`] or [`DeltaClass::Missing`].
    pub failed: bool,
}

/// Diffs `current` against `baseline` with the given thresholds.
///
/// # Errors
///
/// Returns a message when the schema versions or suite names
/// disagree — those runs are not comparable.
pub fn compare_suites(
    baseline: &BenchSuite,
    current: &BenchSuite,
    warn_pct: f64,
    fail_pct: f64,
) -> Result<CompareReport, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema version mismatch: baseline v{} vs current v{}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.suite != current.suite {
        return Err(format!(
            "suite mismatch: baseline `{}` vs current `{}`",
            baseline.suite, current.suite
        ));
    }
    let mut deltas = Vec::new();
    for base in &baseline.results {
        match current.get(&base.name) {
            Some(cur) => {
                let pct =
                    (cur.median_ns as f64 - base.median_ns as f64) / base.median_ns as f64 * 100.0;
                let class = if pct > fail_pct {
                    DeltaClass::Fail
                } else if pct > warn_pct {
                    DeltaClass::Warn
                } else {
                    DeltaClass::Ok
                };
                deltas.push(Delta {
                    name: base.name.clone(),
                    base_ns: base.median_ns,
                    cur_ns: cur.median_ns,
                    pct,
                    class,
                });
            }
            None => deltas.push(Delta {
                name: base.name.clone(),
                base_ns: base.median_ns,
                cur_ns: 0,
                pct: 0.0,
                class: DeltaClass::Missing,
            }),
        }
    }
    for cur in &current.results {
        if baseline.get(&cur.name).is_none() {
            deltas.push(Delta {
                name: cur.name.clone(),
                base_ns: 0,
                cur_ns: cur.median_ns,
                pct: 0.0,
                class: DeltaClass::New,
            });
        }
    }
    let warned = deltas.iter().any(|d| d.class == DeltaClass::Warn);
    let failed = deltas
        .iter()
        .any(|d| matches!(d.class, DeltaClass::Fail | DeltaClass::Missing));
    Ok(CompareReport {
        deltas,
        warned,
        failed,
    })
}

// ---------------------------------------------------------------------
// core benches
// ---------------------------------------------------------------------

fn seeded_tensor(dims: &[usize], seed: u64) -> Tensor {
    Tensor::randn(dims, &mut StdRng::seed_from_u64(seed))
}

fn matmul_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

/// Square matmul — the generic dense workload.
fn bench_matmul_256() -> PreparedBench {
    let (m, k, n) = (256, 256, 256);
    let a = seeded_tensor(&[m, k], 1);
    let b = seeded_tensor(&[k, n], 2);
    PreparedBench {
        throughput: Some((matmul_flops(m, k, n), "flop/s")),
        run: Box::new(move || {
            std::hint::black_box(a.matmul(&b).expect("bench matmul"));
        }),
    }
}

/// The batched conv1 forward product: filter bank `(out_c, C·k·k)`
/// times the transposed im2col matrix `(C·k·k, B·P)` — the exact
/// call `Conv2d::forward` makes (B=8 of 16×16 positions, 3ch 3×3,
/// 16 filters).
fn bench_matmul_conv_fwd() -> PreparedBench {
    let (m, k, n) = (16, 27, 2048);
    let a = seeded_tensor(&[m, k], 3);
    let b = seeded_tensor(&[k, n], 4);
    PreparedBench {
        throughput: Some((matmul_flops(m, k, n), "flop/s")),
        run: Box::new(move || {
            std::hint::black_box(a.matmul(&b).expect("bench matmul"));
        }),
    }
}

/// The batched conv1 weight-gradient product: `δY (oc, B·P)` against
/// `col (C·k·k, B·P)` over the long shared axis — conv backward's
/// `matmul_nt` call.
fn bench_matmul_nt_conv_gw() -> PreparedBench {
    let (m, k, n) = (16, 2048, 27);
    let a = seeded_tensor(&[m, k], 5);
    let b = seeded_tensor(&[n, k], 6);
    PreparedBench {
        throughput: Some((matmul_flops(m, k, n), "flop/s")),
        run: Box::new(move || {
            std::hint::black_box(a.matmul_nt(&b).expect("bench matmul_nt"));
        }),
    }
}

/// The batched conv1 input-gradient product: `Wᵀ · δY` with the
/// short `out_c` leading axis — conv backward's `matmul_tn` call.
fn bench_matmul_tn_conv_gx() -> PreparedBench {
    let (k, m, n) = (16, 27, 2048);
    let a = seeded_tensor(&[k, m], 17);
    let b = seeded_tensor(&[k, n], 18);
    PreparedBench {
        throughput: Some((matmul_flops(m, k, n), "flop/s")),
        run: Box::new(move || {
            std::hint::black_box(a.matmul_tn(&b).expect("bench matmul_tn"));
        }),
    }
}

/// The malicious-layer shape of the attacks: a batch of flattened
/// images against a wide `Linear` (`x · Wᵀ`).
fn bench_matmul_nt_linear() -> PreparedBench {
    let (m, k, n) = (64, 768, 256); // B=64 of 3·16·16 features, 256 neurons
    let a = seeded_tensor(&[m, k], 7);
    let b = seeded_tensor(&[n, k], 8);
    PreparedBench {
        throughput: Some((matmul_flops(m, k, n), "flop/s")),
        run: Box::new(move || {
            std::hint::black_box(a.matmul_nt(&b).expect("bench matmul_nt"));
        }),
    }
}

fn conv_layer() -> Conv2d {
    // The workloads' first conv: 3→16 channels, 3×3, stride 1, pad 1
    // on 16×16 inputs.
    Conv2d::new(3, 16, 3, 1, 1, (16, 16), &mut StdRng::seed_from_u64(9))
}

fn bench_conv_forward(batch: usize) -> PreparedBench {
    let mut conv = conv_layer();
    let x = seeded_tensor(&[batch, 3 * 16 * 16], 10);
    PreparedBench {
        throughput: Some((batch as f64, "img/s")),
        run: Box::new(move || {
            std::hint::black_box(conv.forward(&x, Mode::Train).expect("bench conv fwd"));
        }),
    }
}

/// Re-times `inner` with [`simd::with_backend`] pinning `backend`
/// around every iteration (the worker pool inherits the pin), so one
/// run measures both backends regardless of `OASIS_SIMD`.
fn simd_pinned(backend: simd::Backend, inner: PreparedBench) -> PreparedBench {
    let mut run = inner.run;
    PreparedBench {
        throughput: inner.throughput,
        run: Box::new(move || simd::with_backend(backend, &mut run)),
    }
}

fn bench_matmul_256_simd() -> PreparedBench {
    simd_pinned(simd::Backend::detect(), bench_matmul_256())
}

fn bench_matmul_256_scalar() -> PreparedBench {
    simd_pinned(simd::Backend::Scalar, bench_matmul_256())
}

fn bench_matmul_nt_linear_simd() -> PreparedBench {
    simd_pinned(simd::Backend::detect(), bench_matmul_nt_linear())
}

fn bench_matmul_nt_linear_scalar() -> PreparedBench {
    simd_pinned(simd::Backend::Scalar, bench_matmul_nt_linear())
}

fn bench_codec_q8_encode_simd() -> PreparedBench {
    simd_pinned(simd::Backend::detect(), bench_codec_q8_encode())
}

fn bench_codec_q8_encode_scalar() -> PreparedBench {
    simd_pinned(simd::Backend::Scalar, bench_codec_q8_encode())
}

fn bench_codec_q8_decode_simd() -> PreparedBench {
    simd_pinned(simd::Backend::detect(), bench_codec_q8_decode())
}

fn bench_codec_q8_decode_scalar() -> PreparedBench {
    simd_pinned(simd::Backend::Scalar, bench_codec_q8_decode())
}

/// PSNR over a ~1 MB signal pair — the metrics hot path every trial's
/// reconstruction matching runs per candidate image.
fn bench_psnr() -> PreparedBench {
    let a = codec_update();
    let b = seeded_tensor(&[262_144], 23).data().to_vec();
    PreparedBench {
        throughput: Some((a.len() as f64, "elem/s")),
        run: Box::new(move || {
            std::hint::black_box(psnr_data(&a, &b));
        }),
    }
}

fn bench_psnr_simd() -> PreparedBench {
    simd_pinned(simd::Backend::detect(), bench_psnr())
}

fn bench_psnr_scalar() -> PreparedBench {
    simd_pinned(simd::Backend::Scalar, bench_psnr())
}

fn bench_conv_forward_b8() -> PreparedBench {
    bench_conv_forward(8)
}

fn bench_conv_forward_b32() -> PreparedBench {
    bench_conv_forward(32)
}

fn bench_conv_backward_b8() -> PreparedBench {
    let batch = 8;
    let mut conv = conv_layer();
    let x = seeded_tensor(&[batch, 3 * 16 * 16], 11);
    let y = conv.forward(&x, Mode::Train).expect("bench conv fwd");
    let grad = Tensor::ones(y.dims());
    PreparedBench {
        throughput: Some((batch as f64, "img/s")),
        run: Box::new(move || {
            std::hint::black_box(conv.backward(&grad).expect("bench conv bwd"));
        }),
    }
}

// ---------------------------------------------------------------------
// fl benches
// ---------------------------------------------------------------------

fn fl_fixture() -> (ModelFactory, Vec<oasis_fl::FlClient>) {
    let data = cifar_like_with(10, 8, 16, 0);
    let d = data.feature_dim();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 64, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(64, 10, &mut rng));
        m
    });
    let clients = oasis_fl::partition_iid(
        &data,
        4,
        Arc::new(DefenseStack::identity()),
        &mut StdRng::seed_from_u64(13),
    );
    (factory, clients)
}

fn bench_fl_round(codec: CodecSpec) -> PreparedBench {
    let (factory, clients) = fl_fixture();
    PreparedBench {
        throughput: Some((clients.len() as f64, "client/s")),
        run: Box::new(move || {
            // Fresh server + pinned rng per iteration: every round is
            // bit-identical work. A persistent server would train the
            // model across iterations, and round cost drifts with
            // activation sparsity (the matmul kernels skip zeros).
            let mut server =
                FlServer::new(Arc::clone(&factory), FlConfig::default()).expect("bench server");
            server.set_wire(WireConfig::new(codec, NetSpec::Ideal));
            let mut rng = StdRng::seed_from_u64(14);
            std::hint::black_box(server.run_round(&clients, &mut rng).expect("bench round"));
        }),
    }
}

fn bench_fl_round_raw() -> PreparedBench {
    bench_fl_round(CodecSpec::Raw)
}

/// `fl_round_raw` with telemetry recording forced on for the
/// iteration — the other half of the observability record pair.
/// Comparing its median against `fl_round_raw` (telemetry compiled
/// in but disabled, the default) bounds the cost of tracing a round;
/// the disabled path itself is a single relaxed atomic load per
/// instrumentation point.
fn bench_fl_round_raw_telem() -> PreparedBench {
    let mut base = bench_fl_round(CodecSpec::Raw);
    PreparedBench {
        throughput: base.throughput,
        run: Box::new(move || {
            let was = oasis_telemetry::set_enabled(true);
            (base.run)();
            oasis_telemetry::set_enabled(was);
            // Drop the spans so long bench runs don't accumulate
            // unbounded records (and later benches start clean).
            oasis_telemetry::reset();
        }),
    }
}

fn bench_fl_round_q8() -> PreparedBench {
    bench_fl_round(CodecSpec::Q8)
}

/// A ~1 MB update vector (262 144 parameters).
fn codec_update() -> Vec<f32> {
    seeded_tensor(&[262_144], 15).data().to_vec()
}

fn bench_codec_encode(codec: Box<dyn UpdateCodec>) -> PreparedBench {
    let update = codec_update();
    let bytes = update.len() as f64 * 4.0;
    PreparedBench {
        throughput: Some((bytes, "B/s")),
        run: Box::new(move || {
            std::hint::black_box(codec.encode(&update).expect("bench encode"));
        }),
    }
}

fn bench_codec_decode(codec: Box<dyn UpdateCodec>) -> PreparedBench {
    let update = codec_update();
    let bytes = update.len() as f64 * 4.0;
    let encoded = codec.encode(&update).expect("bench encode");
    // Measure the fold-path decode: a borrowed view over one reused
    // arena slot — raw frames resolve to a zero-copy borrow, lossy
    // codecs fill the slot — exactly what the server does per frame.
    let mut scratch = oasis_wire::FrameBuf::new();
    PreparedBench {
        throughput: Some((bytes, "B/s")),
        run: Box::new(move || {
            std::hint::black_box(
                codec
                    .decode_view(&encoded, &mut scratch)
                    .expect("bench decode")
                    .len(),
            );
        }),
    }
}

fn bench_codec_raw_encode() -> PreparedBench {
    bench_codec_encode(Box::new(RawCodec))
}

fn bench_codec_raw_decode() -> PreparedBench {
    bench_codec_decode(Box::new(RawCodec))
}

fn bench_codec_q8_encode() -> PreparedBench {
    bench_codec_encode(Box::new(Q8Codec))
}

fn bench_codec_q8_decode() -> PreparedBench {
    bench_codec_decode(Box::new(Q8Codec))
}

/// One `oasis:MR+dp:1,0.01` defense-stack application: the OASIS
/// batch stage on a B = 8 batch (16×16×3) plus the update stage
/// (client-level clip + Gaussian noise) on a 262 144-parameter
/// update — the per-round client-side cost of stacking defenses.
fn bench_defense_stack() -> PreparedBench {
    let stack: DefenseStack = "oasis:MR+dp:1,0.01"
        .parse::<oasis_scenario::DefenseSpec>()
        .expect("stack spec")
        .build()
        .expect("stack build");
    let data = cifar_like_with(8, 1, 16, 21);
    let batch = oasis_data::Batch::from_items(data.items().to_vec());
    let update = codec_update();
    PreparedBench {
        throughput: Some((batch.len() as f64, "img/s")),
        run: Box::new(move || {
            let mut rng = StdRng::seed_from_u64(22);
            let processed = stack.process_batch(&batch, &mut rng);
            let mut u = update.clone();
            stack.clip_update(&mut u);
            stack.perturb_update(&mut u, processed.len(), &mut rng);
            std::hint::black_box((processed, u));
        }),
    }
}

/// One RTF inversion step: invert a 128-neuron malicious layer's
/// gradients back into candidate images (paper Eq. 6 over every bin,
/// plus pool dedup).
fn bench_rtf_invert() -> PreparedBench {
    let neurons = 128;
    let geometry = (3, 16, 16);
    let d = geometry.0 * geometry.1 * geometry.2;
    let attack = RtfAttack::new(neurons, 0.5, 0.15).expect("bench rtf");
    let grad_w = seeded_tensor(&[neurons, d], 16);
    // Strictly decreasing bias gradients keep every adjacent
    // difference invertible, so all bins do work.
    let grad_b = Tensor::from_vec(
        (0..neurons)
            .map(|i| 1.0 + (neurons - i) as f32 * 0.01)
            .collect(),
        &[neurons],
    )
    .expect("bias gradient");
    PreparedBench {
        throughput: Some((neurons as f64, "neuron/s")),
        run: Box::new(move || {
            std::hint::black_box(attack.reconstruct(&grad_w, &grad_b, geometry));
        }),
    }
}

// ---------------------------------------------------------------------
// scale benches (+ the parallel-efficiency gate)
// ---------------------------------------------------------------------

/// Re-times `inner` with [`parallel::with_threads`] pinned to
/// `threads` around every iteration.
fn scaled(threads: usize, inner: PreparedBench) -> PreparedBench {
    let mut run = inner.run;
    PreparedBench {
        throughput: inner.throughput,
        run: Box::new(move || parallel::with_threads(threads, &mut run)),
    }
}

fn bench_fl_round_raw_t1() -> PreparedBench {
    scaled(1, bench_fl_round_raw())
}

fn bench_fl_round_raw_t2() -> PreparedBench {
    scaled(2, bench_fl_round_raw())
}

fn bench_fl_round_raw_t4() -> PreparedBench {
    scaled(4, bench_fl_round_raw())
}

fn bench_conv_forward_b32_t1() -> PreparedBench {
    scaled(1, bench_conv_forward_b32())
}

fn bench_conv_forward_b32_t2() -> PreparedBench {
    scaled(2, bench_conv_forward_b32())
}

fn bench_conv_forward_b32_t4() -> PreparedBench {
    scaled(4, bench_conv_forward_b32())
}

fn bench_matmul_256_t1() -> PreparedBench {
    scaled(1, bench_matmul_256())
}

fn bench_matmul_256_t2() -> PreparedBench {
    scaled(2, bench_matmul_256())
}

fn bench_matmul_256_t4() -> PreparedBench {
    scaled(4, bench_matmul_256())
}

fn bench_rtf_invert_t1() -> PreparedBench {
    scaled(1, bench_rtf_invert())
}

fn bench_rtf_invert_t2() -> PreparedBench {
    scaled(2, bench_rtf_invert())
}

fn bench_rtf_invert_t4() -> PreparedBench {
    scaled(4, bench_rtf_invert())
}

// ---------------------------------------------------------------------
// pop benches
// ---------------------------------------------------------------------

/// The population-round fixture: the fl fixture's pool and model,
/// but `population` descriptor clients instead of four resident
/// ones. Past the pool size every client holds one sample
/// (round-robin), so per-client compute stays constant while the
/// population axis grows.
fn pop_fixture(population: usize) -> (ModelFactory, Population) {
    let data = cifar_like_with(10, 8, 16, 0);
    let d = data.feature_dim();
    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 64, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(64, 10, &mut rng));
        m
    });
    let pop = Population::iid(
        &data,
        population,
        Arc::new(DefenseStack::identity()),
        &mut StdRng::seed_from_u64(13),
    );
    (factory, pop)
}

/// One cohort-64 round sampled from `population` clients. The
/// population (descriptors + shared pool) is built once and shared
/// across iterations; the server and runner are fresh per iteration
/// so every round is bit-identical work (see [`bench_fl_round`]).
fn bench_pop_round(population: usize) -> PreparedBench {
    let (factory, pop) = pop_fixture(population);
    PreparedBench {
        throughput: Some((1.0, "round/s")),
        run: Box::new(move || {
            let server = FlServer::new(
                Arc::clone(&factory),
                FlConfig {
                    clients_per_round: 64,
                    ..FlConfig::default()
                },
            )
            .expect("bench server");
            let mut runner = CohortRunner::new(server, pop.clone());
            let mut rng = StdRng::seed_from_u64(14);
            std::hint::black_box(runner.run_round(&mut rng).expect("bench pop round"));
        }),
    }
}

fn bench_pop_round_1k() -> PreparedBench {
    bench_pop_round(1_000)
}

fn bench_pop_round_10k() -> PreparedBench {
    bench_pop_round(10_000)
}

fn bench_pop_round_100k() -> PreparedBench {
    bench_pop_round(100_000)
}

/// One full 100-round campaign: 40 plain rounds, 30 with 20%/30%
/// churn, 30 with churn plus an α=0.5 Dirichlet re-partition — no
/// adversary probes, so the record isolates the engine's per-round
/// bookkeeping over the cohort round. The dataset is built once and
/// shared; each iteration runs a fresh campaign, so every iteration
/// is bit-identical work.
fn bench_campaign_100r() -> PreparedBench {
    let data = cifar_like_with(3, 8, 8, 3);
    let d = data.feature_dim();
    PreparedBench {
        throughput: Some((100.0, "round/s")),
        run: Box::new(move || {
            let spec: CampaignSpec =
                "campaign:40;30+leave=0.2+join=0.3;30+leave=0.1+join=0.3+alpha=0.5"
                    .parse()
                    .expect("campaign bench spec parses");
            let mut setup = CampaignSetup::new(
                data.clone(),
                16,
                oasis_campaign::linear_relu_factory(d, 12, 3, 12),
            );
            setup.seed = 14;
            setup.partition_seed = 13;
            setup.eval_every = 0;
            let mut campaign =
                CampaignRunner::new(spec, setup).expect("campaign bench setup builds");
            campaign.run().expect("campaign bench run");
            std::hint::black_box(campaign.records().len());
        }),
    }
}

/// One bench's scaling datapoint, derived from a scale suite's
/// `<base>_t1` / `<base>_t<N>` medians.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Bench base name (e.g. `fl_round_raw`).
    pub base: String,
    /// Worker threads of the multi-threaded record.
    pub threads: usize,
    /// Serial (`_t1`) median, ns.
    pub t1_ns: u64,
    /// Multi-threaded (`_t<threads>`) median, ns.
    pub tn_ns: u64,
}

impl ScalePoint {
    /// Serial time over parallel time — > 1 means threads helped.
    pub fn speedup(&self) -> f64 {
        self.t1_ns as f64 / self.tn_ns.max(1) as f64
    }

    /// Speedup normalized by thread count (1.0 = perfect scaling).
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.threads as f64
    }
}

/// Extracts every `_t1`/`_tN` pair from a scale-suite run, in record
/// order. Records without a `_t1` sibling are skipped.
pub fn scale_points(suite: &BenchSuite) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for rec in &suite.results {
        let Some((base, tn)) = rec.name.rsplit_once("_t") else {
            continue;
        };
        let Ok(threads) = tn.parse::<usize>() else {
            continue;
        };
        if threads <= 1 {
            continue;
        }
        let Some(t1) = suite.get(&format!("{base}_t1")) else {
            continue;
        };
        points.push(ScalePoint {
            base: base.to_string(),
            threads,
            t1_ns: t1.median_ns,
            tn_ns: rec.median_ns,
        });
    }
    points
}

/// Outcome of the parallel-efficiency gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Every `_t1`/`_tN` pair found, in record order.
    pub points: Vec<ScalePoint>,
    /// True when any pair at `at_threads` fell below `min_speedup`.
    pub failed: bool,
}

/// Gates a scale-suite run on parallel efficiency: every bench's
/// `_t<at_threads>` median must be at least `min_speedup` times
/// faster than its `_t1` median. `min_speedup = 1.0` asserts the old
/// failure mode is gone — multi-threaded must never be *slower* than
/// serial on the same machine.
///
/// # Errors
///
/// Returns a message when the suite contains no pair at `at_threads`
/// — the gate would be vacuous.
pub fn scale_gate(
    suite: &BenchSuite,
    at_threads: usize,
    min_speedup: f64,
) -> Result<ScaleReport, String> {
    let points = scale_points(suite);
    if !points.iter().any(|p| p.threads == at_threads) {
        return Err(format!(
            "suite `{}` has no _t1/_t{at_threads} pairs to gate on",
            suite.suite
        ));
    }
    let failed = points
        .iter()
        .any(|p| p.threads == at_threads && p.speedup() < min_speedup);
    Ok(ScaleReport { points, failed })
}

/// One bench's lane-scaling datapoint, derived from a core suite's
/// `<base>_scalar` / `<base>_simd` medians.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdPoint {
    /// Bench base name (e.g. `matmul_nt_linear`).
    pub base: String,
    /// Scalar-reference (`_scalar`) median, ns.
    pub scalar_ns: u64,
    /// Best-backend (`_simd`) median, ns.
    pub simd_ns: u64,
}

impl SimdPoint {
    /// Scalar time over vector time — > 1 means lanes helped.
    pub fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.simd_ns.max(1) as f64
    }
}

/// Extracts every `_scalar`/`_simd` pair from a suite run, in record
/// order of the `_simd` records. Records without a `_scalar` sibling
/// are skipped.
pub fn simd_points(suite: &BenchSuite) -> Vec<SimdPoint> {
    let mut points = Vec::new();
    for rec in &suite.results {
        let Some(base) = rec.name.strip_suffix("_simd") else {
            continue;
        };
        let Some(scalar) = suite.get(&format!("{base}_scalar")) else {
            continue;
        };
        points.push(SimdPoint {
            base: base.to_string(),
            scalar_ns: scalar.median_ns,
            simd_ns: rec.median_ns,
        });
    }
    points
}

/// Outcome of the lane-efficiency gate.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdReport {
    /// Every `_scalar`/`_simd` pair found, in record order.
    pub points: Vec<SimdPoint>,
    /// True when any pair fell below `min_speedup`.
    pub failed: bool,
}

/// Gates a suite run on lane efficiency: every bench's `_simd` median
/// must be at least `min_speedup` times faster than its `_scalar`
/// median *within the same run*, so the gate is machine-relative.
/// On hardware where the best detected backend is scalar itself the
/// pairs time identical code and the gate degenerates to a noise
/// check — which is why the margin should sit below 1.0.
///
/// # Errors
///
/// Returns a message when the suite contains no `_scalar`/`_simd`
/// pairs — the gate would be vacuous.
pub fn simd_gate(suite: &BenchSuite, min_speedup: f64) -> Result<SimdReport, String> {
    let points = simd_points(suite);
    if points.is_empty() {
        return Err(format!(
            "suite `{}` has no _scalar/_simd pairs to gate on",
            suite.suite
        ));
    }
    let failed = points.iter().any(|p| p.speedup() < min_speedup);
    Ok(SimdReport { points, failed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(suite: Vec<BenchDef>) -> Vec<&'static str> {
        suite.into_iter().map(|b| b.name).collect()
    }

    #[test]
    fn suite_listing_is_deterministic_and_stable() {
        let core = names(core_suite());
        assert_eq!(
            core,
            vec![
                "matmul_256",
                "matmul_conv_fwd",
                "matmul_nt_conv_gw",
                "matmul_tn_conv_gx",
                "matmul_nt_linear",
                "conv2d_forward_b8",
                "conv2d_backward_b8",
                "conv2d_forward_b32",
                "matmul_256_simd",
                "matmul_256_scalar",
                "matmul_nt_linear_simd",
                "matmul_nt_linear_scalar",
                "codec_q8_encode_simd",
                "codec_q8_encode_scalar",
                "codec_q8_decode_simd",
                "codec_q8_decode_scalar",
                "psnr_simd",
                "psnr_scalar",
            ]
        );
        assert_eq!(core, names(core_suite()), "listing must be reproducible");
        let fl = names(fl_suite());
        assert_eq!(
            fl,
            vec![
                "fl_round_raw",
                "fl_round_raw_telem",
                "fl_round_q8",
                "codec_raw_encode",
                "codec_raw_decode",
                "codec_q8_encode",
                "codec_q8_decode",
                "rtf_invert_128",
                "defense_stack",
            ]
        );
        let scale = names(scale_suite());
        assert_eq!(
            scale,
            vec![
                "fl_round_raw_t1",
                "fl_round_raw_t2",
                "fl_round_raw_t4",
                "conv2d_forward_b32_t1",
                "conv2d_forward_b32_t2",
                "conv2d_forward_b32_t4",
                "matmul_256_t1",
                "matmul_256_t2",
                "matmul_256_t4",
                "rtf_invert_128_t1",
                "rtf_invert_128_t2",
                "rtf_invert_128_t4",
            ]
        );
        let pop = names(pop_suite());
        assert_eq!(pop, vec!["pop_round_1k", "pop_round_10k", "pop_round_100k"]);
        let campaign = names(campaign_suite());
        assert_eq!(campaign, vec!["campaign_100r"]);
        assert!(suite("core").is_some());
        assert!(suite("fl").is_some());
        assert!(suite("scale").is_some());
        assert!(suite("pop").is_some());
        assert!(suite("campaign").is_some());
        assert!(suite("nope").is_none());
        assert_eq!(SUITE_NAMES.len(), 5);
    }

    #[test]
    fn pop_suite_memory_stays_bounded() {
        // The bench fixture's promise: on the raw zero-copy wire the
        // server-side update memory is exactly one model buffer (the
        // accumulator — frames fold as borrowed views and the frame
        // arena never materializes scratch), independent of
        // population. One round at the smallest population suffices —
        // the aggregator's footprint has no population term at all.
        let (factory, pop) = pop_fixture(1_000);
        let n = oasis_nn::param_count(&mut factory());
        let server = FlServer::new(
            factory,
            FlConfig {
                clients_per_round: 64,
                ..FlConfig::default()
            },
        )
        .expect("server");
        let mut runner = CohortRunner::new(server, pop);
        let report = runner
            .run_round(&mut StdRng::seed_from_u64(14))
            .expect("pop round");
        assert_eq!(report.population, 1_000);
        assert_eq!(report.round_report.cohort, 64);
        assert_eq!(report.peak_accum_bytes, 4 * n);
        assert_eq!(
            runner.server().decode_scratch_bytes(),
            0,
            "raw rounds must not retain frame-arena scratch"
        );
    }

    fn scale_suite_of(medians: &[(&str, u64)]) -> BenchSuite {
        BenchSuite {
            schema_version: SCHEMA_VERSION,
            suite: "scale".into(),
            threads: 4,
            simd: "scalar".into(),
            quick: true,
            results: medians
                .iter()
                .map(|&(name, median_ns)| BenchRecord {
                    name: name.into(),
                    iters: 3,
                    median_ns,
                    min_ns: median_ns,
                    throughput: None,
                    throughput_unit: None,
                })
                .collect(),
        }
    }

    #[test]
    fn scale_points_derive_speedup_and_efficiency() {
        let suite = scale_suite_of(&[
            ("fl_round_raw_t1", 4000),
            ("fl_round_raw_t2", 2000),
            ("fl_round_raw_t4", 1000),
            ("orphan_t4", 10), // no _t1 sibling: skipped
            ("not_a_pair", 10),
        ]);
        let points = scale_points(&suite);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].base, "fl_round_raw");
        assert_eq!(points[0].threads, 2);
        assert!((points[0].speedup() - 2.0).abs() < 1e-9);
        assert!((points[0].efficiency() - 1.0).abs() < 1e-9);
        assert_eq!(points[1].threads, 4);
        assert!((points[1].speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scale_gate_passes_speedups_and_fails_slowdowns() {
        let good = scale_suite_of(&[
            ("fl_round_raw_t1", 4000),
            ("fl_round_raw_t4", 1500),
            ("matmul_256_t1", 1000),
            ("matmul_256_t4", 900),
        ]);
        let report = scale_gate(&good, 4, 1.0).expect("gate applies");
        assert!(!report.failed);

        // The pre-pool failure mode: 4 threads slower than 1.
        let bad = scale_suite_of(&[("fl_round_raw_t1", 4000), ("fl_round_raw_t4", 5000)]);
        let report = scale_gate(&bad, 4, 1.0).expect("gate applies");
        assert!(report.failed);

        // A stricter bar: ≥2× at 4 threads.
        let report = scale_gate(&good, 4, 2.0).expect("gate applies");
        assert!(report.failed, "matmul_256 at 1.11x misses a 2x bar");

        // No pairs at the requested width ⇒ the gate refuses to be
        // vacuously green.
        assert!(scale_gate(&good, 8, 1.0).is_err());
    }

    #[test]
    fn simd_points_pair_scalar_and_simd_records() {
        let suite = scale_suite_of(&[
            ("matmul_nt_linear_simd", 1000),
            ("matmul_nt_linear_scalar", 5000),
            ("psnr_simd", 10), // no _scalar sibling: skipped
            ("matmul_256", 10),
        ]);
        let points = simd_points(&suite);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].base, "matmul_nt_linear");
        assert_eq!(points[0].scalar_ns, 5000);
        assert_eq!(points[0].simd_ns, 1000);
        assert!((points[0].speedup() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn simd_gate_fails_when_lanes_lose_to_scalar() {
        let good = scale_suite_of(&[
            ("matmul_256_simd", 1000),
            ("matmul_256_scalar", 4000),
            ("psnr_simd", 980),
            ("psnr_scalar", 1000), // 1.02x: scalar-best hardware noise band
        ]);
        let report = simd_gate(&good, 0.9).expect("gate applies");
        assert!(!report.failed);
        assert_eq!(report.points.len(), 2);

        // A vector backend slower than the scalar reference is a
        // dispatch or kernel regression, not noise.
        let bad = scale_suite_of(&[
            ("codec_q8_encode_simd", 2000),
            ("codec_q8_encode_scalar", 1000),
        ]);
        let report = simd_gate(&bad, 0.9).expect("gate applies");
        assert!(report.failed);

        // A stricter bar: the 1.02x pair misses 2x.
        assert!(simd_gate(&good, 2.0).expect("gate applies").failed);

        // No pairs ⇒ the gate refuses to be vacuously green.
        assert!(simd_gate(&scale_suite_of(&[("matmul_256", 10)]), 0.9).is_err());
    }

    #[test]
    fn baselines_without_simd_field_still_parse() {
        // Committed BENCH_*.json files predating the `simd` field must
        // stay diffable without a schema bump.
        let json = r#"{
            "schema_version": 1,
            "suite": "core",
            "threads": 1,
            "quick": false,
            "results": []
        }"#;
        let suite: BenchSuite = serde_json::from_str(json).expect("old baseline parses");
        assert_eq!(suite.simd, "");
    }

    #[test]
    fn filter_selects_expected_subset() {
        assert_eq!(
            names(apply_filter(core_suite(), "conv2d")),
            vec![
                "conv2d_forward_b8",
                "conv2d_backward_b8",
                "conv2d_forward_b32"
            ]
        );
        assert_eq!(
            names(apply_filter(fl_suite(), "q8")),
            vec!["fl_round_q8", "codec_q8_encode", "codec_q8_decode"]
        );
        assert!(apply_filter(core_suite(), "no-such-bench").is_empty());
    }

    #[test]
    fn schema_roundtrips_through_serde_json() {
        let suite = BenchSuite {
            schema_version: SCHEMA_VERSION,
            suite: "core".into(),
            threads: 4,
            simd: "avx2".into(),
            quick: true,
            results: vec![
                BenchRecord {
                    name: "matmul_256".into(),
                    iters: 17,
                    median_ns: 1_234_567,
                    min_ns: 1_200_000,
                    throughput: Some(2.5e9),
                    throughput_unit: Some("flop/s".into()),
                },
                BenchRecord {
                    name: "unitless".into(),
                    iters: 3,
                    median_ns: 10,
                    min_ns: 9,
                    throughput: None,
                    throughput_unit: None,
                },
            ],
        };
        let json = serde_json::to_string_pretty(&suite).expect("serialize");
        let back: BenchSuite = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, suite);
    }

    #[test]
    fn tiny_bench_produces_sane_record() {
        let prepared = PreparedBench {
            throughput: Some((100.0, "item/s")),
            run: Box::new(|| {
                std::hint::black_box((0..100u64).sum::<u64>());
            }),
        };
        let rec = run_prepared("tiny", prepared, true);
        assert_eq!(rec.name, "tiny");
        assert!(rec.iters >= 3);
        assert!(rec.min_ns <= rec.median_ns);
        assert!(rec.throughput.unwrap() > 0.0);
        assert_eq!(rec.throughput_unit.as_deref(), Some("item/s"));
    }

    #[test]
    fn compare_classifies_against_thresholds() {
        let rec = |name: &str, median: u64| BenchRecord {
            name: name.into(),
            iters: 3,
            median_ns: median,
            min_ns: median,
            throughput: None,
            throughput_unit: None,
        };
        let suite_of = |results: Vec<BenchRecord>| BenchSuite {
            schema_version: SCHEMA_VERSION,
            suite: "core".into(),
            threads: 1,
            simd: "scalar".into(),
            quick: true,
            results,
        };
        let baseline = suite_of(vec![
            rec("steady", 1000),
            rec("warned", 1000),
            rec("failed", 1000),
            rec("gone", 1000),
        ]);
        let current = suite_of(vec![
            rec("steady", 1050),
            rec("warned", 1200),
            rec("failed", 1500),
            rec("brand_new", 10),
        ]);
        let report = compare_suites(&baseline, &current, WARN_PCT, FAIL_PCT).expect("comparable");
        let class_of = |n: &str| {
            report
                .deltas
                .iter()
                .find(|d| d.name == n)
                .expect("delta present")
                .class
        };
        assert_eq!(class_of("steady"), DeltaClass::Ok);
        assert_eq!(class_of("warned"), DeltaClass::Warn);
        assert_eq!(class_of("failed"), DeltaClass::Fail);
        assert_eq!(class_of("gone"), DeltaClass::Missing);
        assert_eq!(class_of("brand_new"), DeltaClass::New);
        assert!(report.warned);
        assert!(report.failed);
    }

    #[test]
    fn compare_rejects_mismatched_runs() {
        let a = BenchSuite {
            schema_version: SCHEMA_VERSION,
            suite: "core".into(),
            threads: 1,
            simd: "scalar".into(),
            quick: true,
            results: vec![],
        };
        let mut b = a.clone();
        b.suite = "fl".into();
        assert!(compare_suites(&a, &b, WARN_PCT, FAIL_PCT).is_err());
        let mut c = a.clone();
        c.schema_version = SCHEMA_VERSION + 1;
        assert!(compare_suites(&a, &c, WARN_PCT, FAIL_PCT).is_err());
    }

    #[test]
    fn improvements_never_warn() {
        let rec = |median: u64| BenchRecord {
            name: "fast".into(),
            iters: 3,
            median_ns: median,
            min_ns: median,
            throughput: None,
            throughput_unit: None,
        };
        let mk = |median| BenchSuite {
            schema_version: SCHEMA_VERSION,
            suite: "fl".into(),
            threads: 1,
            simd: "scalar".into(),
            quick: false,
            results: vec![rec(median)],
        };
        let report = compare_suites(&mk(1000), &mk(400), WARN_PCT, FAIL_PCT).expect("comparable");
        assert!(!report.warned && !report.failed);
        assert!(report.deltas[0].pct < 0.0);
    }
}
