//! # oasis-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! the OASIS paper's evaluation section. Each `src/bin/figN_*.rs`
//! binary prints the rows/series of one figure; see `EXPERIMENTS.md`
//! at the repository root for the full index and how the measured
//! numbers compare with the paper's.
//!
//! Figure binaries are thin loops over the declarative
//! [`oasis_scenario`] engine — the experiment definitions themselves
//! (attack, defense, workload, batch, trials, seeds) are values; the
//! `scenario` binary runs any such value or a sweep from the command
//! line.
//!
//! All binaries accept:
//!
//! * `--quick` — a smoke-test scale that finishes in seconds,
//! * `--full`  — the paper's full grid (slow on CPU),
//! * (default) — a reduced-resolution scale that preserves the
//!   paper's qualitative shape and finishes in minutes.

#![warn(missing_docs)]

pub mod perf;

use oasis_augment::PolicyKind;
use oasis_data::Batch;
use oasis_fl::DefenseStack;
use oasis_image::Image;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use oasis_attacks::{
    run_attack, ActiveAttack, AttackOutcome, CahAttack, LinearModelAttack, QbiAttack, RtfAttack,
    DEFAULT_ACTIVATION_TARGET,
};
pub use oasis_campaign::{
    linear_relu_factory, validate_trajectory, CampaignError, CampaignRunner, CampaignSetup,
    CampaignSpec, TrajectoryReport, TrajectorySummary,
};
pub use oasis_scenario::{
    out_path, spec_catalog, AttackSpec, CodecSpec, DefenseSpec, NetSpec, PopulationSpec,
    SampleSpec, Sampling, Scale, Scenario, ScenarioError, ScenarioReport, WorkloadSpec,
};

/// The two evaluation workloads of the paper (alias of
/// [`WorkloadSpec`], which also provides the 100-class synthetic
/// variants used by the linear-model experiment).
pub type Workload = WorkloadSpec;

/// Calibration images (the "coarse data statistics" the attacker is
/// assumed to know) drawn from a disjoint seed.
pub fn calibration_images(workload: Workload, scale: Scale, count: usize) -> Vec<Image> {
    Scenario::builder()
        .workload(workload)
        .scale(scale)
        .calibration(count)
        .build()
        .expect("calibration-only scenario is always valid")
        .calibration_images()
}

/// Builds and runs one campaign of `spec` under `defense`: the
/// workload's dataset at `scale`, `clients` clients over the shared
/// linear-ReLU model, adversary probed every `eval_every` rounds.
/// Returns the finished runner (trajectory records, adversary log,
/// final server state). Shared by the `scenario --campaign` mode and
/// `fig_trajectory`.
///
/// # Errors
///
/// Propagates setup and round failures from the campaign engine.
pub fn run_campaign(
    spec: CampaignSpec,
    defense: DefenseSpec,
    workload: Workload,
    scale: Scale,
    clients: usize,
    seed: u64,
    eval_every: usize,
) -> Result<CampaignRunner, CampaignError> {
    let dataset = workload.dataset(scale, 64, seed ^ 0xDA7A);
    let d = dataset.feature_dim();
    let classes = dataset.num_classes();
    let mut setup = CampaignSetup::new(dataset, clients, linear_relu_factory(d, 64, classes, 11));
    setup.defense = defense;
    setup.seed = seed;
    setup.partition_seed = seed ^ 0x5EED;
    setup.eval_every = eval_every;
    let mut runner = CampaignRunner::new(spec, setup)?;
    runner.run()?;
    Ok(runner)
}

/// Runs `attack` against `trials` batches of size `batch_size` under
/// `defense`, pooling all matched PSNRs.
///
/// Retained for bespoke experiments (e.g. sweeping a calibrated
/// attack object that is expensive to rebuild); figure binaries use
/// [`Scenario`] instead.
pub fn pooled_attack_psnrs(
    attack: &dyn ActiveAttack,
    dataset: &oasis_data::Dataset,
    batch_size: usize,
    defense: &DefenseStack,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pooled = Vec::new();
    for trial in 0..trials {
        let batch = dataset.sample_batch(batch_size.min(dataset.len()), &mut rng);
        let outcome = run_attack(
            attack,
            &batch,
            defense,
            dataset.num_classes(),
            seed ^ trial as u64,
        )
        .expect("attack execution");
        pooled.extend(outcome.matched_psnrs);
    }
    pooled
}

/// The shared Figure 3/4 grid loop: one [`Scenario`] per
/// (batch size × attacked neurons) cell of each workload, printed as
/// the paper's grid with the strongest per-batch configuration
/// highlighted.
///
/// `seed_base` spreads the per-cell seeds (`seed_base + B·mult + n`,
/// the figure binaries' historical scheme); `dataset_seed` pins the
/// workload build. Each cell rebuilds its (deterministic) dataset and
/// calibration set; at full scale that cost is dominated by the
/// attack rounds themselves.
pub fn attack_grid(
    scale: Scale,
    attack: AttackSpec,
    dataset_seed: u64,
    seed_base: u64,
    calibration: usize,
) {
    let seed_mult: u64 = match attack.family() {
        "cah" => 19,
        _ => 17,
    };
    for workload in [Workload::ImageNette, Workload::Cifar100] {
        let batches = scale.grid_batches();
        let neurons = scale.grid_neurons();
        println!("\n--- {} ---", workload.label());
        print!("{:>7}", "B \\ n");
        for &n in &neurons {
            print!("{n:>9}");
        }
        println!();
        let max_batch = *batches.iter().max().expect("non-empty grid");
        let mut best: Vec<(usize, usize, f64)> = Vec::new();
        for &b in &batches {
            print!("{b:>7}");
            let mut row_best = (0usize, f64::MIN);
            for &n in &neurons {
                let report = Scenario::builder()
                    .workload(workload)
                    .attack(attack.with_neurons(n))
                    .defense(DefenseSpec::none())
                    .batch_size(b)
                    .trials(scale.trials())
                    .scale(scale)
                    .seed(seed_base + b as u64 * seed_mult + n as u64)
                    .dataset_seed(dataset_seed)
                    .dataset_capacity(max_batch)
                    .calibration(calibration)
                    .build()
                    .expect("grid cell scenario")
                    .run()
                    .expect("grid cell run");
                let mean = report.mean_psnr();
                if mean > row_best.1 {
                    row_best = (n, mean);
                }
                print!("{mean:>9.2}");
            }
            println!();
            best.push((b, row_best.0, row_best.1));
        }
        println!("strongest configuration per batch size:");
        for (b, n, mean) in best {
            println!("  B = {b:>4}: n = {n:>5} with mean PSNR {mean:.2} dB");
        }
    }
}

/// The shared Figure 5/6/13 transform-comparison loop: for each
/// (workload, B, n) configuration, one [`Scenario`] per policy in
/// `policies`, printed as the paper's per-policy summary rows.
///
/// `neuron_cap` bounds `n` at quick scale so smoke tests stay in
/// seconds; `linear` attacks ignore the neuron axis entirely.
#[allow(clippy::too_many_arguments)]
pub fn transform_comparison(
    scale: Scale,
    attack: AttackSpec,
    configs: &[(Workload, usize, usize)],
    policies: &[PolicyKind],
    dataset_seed: u64,
    seed_base: u64,
    calibration: usize,
    neuron_cap: usize,
) {
    for &(workload, batch, neurons) in configs {
        let neurons = scale.cap_neurons(neurons, neuron_cap);
        let attack = attack.with_neurons(neurons);
        // The linear-model experiment historically pooled at least two
        // batches so unique-label draws cover the class space.
        let trials = match attack.family() {
            "linear" => scale.trials().max(2),
            _ => scale.trials(),
        };
        match attack.family() {
            "linear" => println!("\n--- {} | B = {batch} ---", workload.label()),
            _ => println!(
                "\n--- {} | B = {batch}, n = {neurons} ---",
                workload.label()
            ),
        }
        for &kind in policies {
            let defense = match kind {
                PolicyKind::Without => DefenseSpec::none(),
                kind => DefenseSpec::oasis(kind),
            };
            let report = Scenario::builder()
                .workload(workload)
                .attack(attack.clone())
                .defense(defense)
                .batch_size(batch)
                .trials(trials)
                .scale(scale)
                .seed(seed_base + batch as u64)
                .dataset_seed(dataset_seed)
                .calibration(calibration)
                .build()
                .expect("transform scenario")
                .run()
                .expect("transform run");
            println!("{:>6}  {}", kind.abbrev(), report.summary);
        }
    }
}

/// The named policies in the order of the paper's Figure 5 legend.
pub fn figure5_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Without,
        PolicyKind::MajorRotation,
        PolicyKind::MinorRotation,
        PolicyKind::Shearing,
        PolicyKind::HorizontalFlip,
        PolicyKind::VerticalFlip,
    ]
}

/// The named policies in the order of the paper's Figure 6 legend.
pub fn figure6_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Without,
        PolicyKind::Shearing,
        PolicyKind::MajorRotation,
        PolicyKind::MajorRotationShearing,
    ]
}

/// Prints a standard experiment header.
pub fn banner(figure: &str, description: &str, scale: Scale) {
    println!("==========================================================");
    println!("{figure}: {description}");
    println!("scale: {scale} (use --quick / --full to change)");
    println!("==========================================================");
}

/// Batches drawn for the visual figures (fixed, documented seed).
pub fn visual_batch(workload: Workload, scale: Scale, batch_size: usize, seed: u64) -> Batch {
    let ds = workload.dataset(scale, batch_size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF16);
    ds.sample_batch(batch_size.min(ds.len()), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_datasets_have_expected_classes() {
        let i = Workload::ImageNette.dataset(Scale::Quick, 8, 1);
        assert_eq!(i.num_classes(), 10);
        let c = Workload::Cifar100.dataset(Scale::Quick, 8, 1);
        assert_eq!(c.num_classes(), 100);
    }

    #[test]
    fn datasets_are_large_enough_for_max_batch() {
        let ds = Workload::ImageNette.dataset(Scale::Quick, 64, 1);
        assert!(ds.len() >= 64);
    }

    #[test]
    fn figure_policy_lists_match_paper_legends() {
        assert_eq!(figure5_policies().len(), 6);
        assert_eq!(figure6_policies().len(), 4);
        assert_eq!(figure6_policies()[3], PolicyKind::MajorRotationShearing);
    }

    #[test]
    fn calibration_images_honor_count() {
        let imgs = calibration_images(Workload::Cifar100, Scale::Quick, 12);
        assert_eq!(imgs.len(), 12);
    }

    #[test]
    fn out_path_honors_env_override() {
        // `out_path` lives in oasis-scenario; spot-check the re-export
        // creates files where the figure binaries expect them.
        let p = out_path("bench_test_artifact.txt");
        assert!(p.parent().is_some_and(std::path::Path::exists));
    }
}
