//! # oasis-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! the OASIS paper's evaluation section. Each `src/bin/figN_*.rs`
//! binary prints the rows/series of one figure; see `EXPERIMENTS.md`
//! at the repository root for the full index and how the measured
//! numbers compare with the paper's.
//!
//! All binaries accept:
//!
//! * `--quick` — a smoke-test scale that finishes in seconds,
//! * `--full`  — the paper's full grid (slow on CPU),
//! * (default) — a reduced-resolution scale that preserves the
//!   paper's qualitative shape and finishes in minutes.

#![warn(missing_docs)]

use oasis_augment::PolicyKind;
use oasis_data::{synthetic_dataset, Batch, Dataset};
use oasis_fl::BatchPreprocessor;
use oasis_image::Image;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use oasis_attacks::{
    run_attack, run_attack_with_dp, ActiveAttack, AttackOutcome, CahAttack, LinearModelAttack,
    RtfAttack, DEFAULT_ACTIVATION_TARGET,
};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke test.
    Quick,
    /// Minutes-scale default preserving the paper's shape.
    Default,
    /// The paper's full grids (slow on CPU).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from the process arguments.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Batch sizes of the Figure 3/4 grid at this scale.
    pub fn grid_batches(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![8, 32],
            Scale::Default => vec![8, 16, 32, 64, 128, 256],
            Scale::Full => vec![8, 16, 32, 64, 96, 128, 160, 192, 224, 256],
        }
    }

    /// Attacked-neuron counts of the Figure 3/4 grid at this scale.
    pub fn grid_neurons(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![100, 400],
            Scale::Default => vec![100, 300, 500, 700, 900],
            Scale::Full => vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
        }
    }

    /// Number of independent batches averaged per configuration.
    pub fn trials(&self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Default => 2,
            Scale::Full => 3,
        }
    }

    /// Image side for the ImageNet stand-in at this scale.
    pub fn imagenette_side(&self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Default => 32,
            Scale::Full => 64,
        }
    }

    /// Image side for the CIFAR100 stand-in at this scale.
    pub fn cifar_side(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Default => 16,
            Scale::Full => 32,
        }
    }
}

/// The two evaluation workloads of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The ImageNet (Imagenette subset) stand-in.
    ImageNette,
    /// The CIFAR100 stand-in.
    Cifar100,
}

impl Workload {
    /// Display name matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::ImageNette => "ImageNet (ImageNette-like)",
            Workload::Cifar100 => "CIFAR100 (CIFAR100-like)",
        }
    }

    /// Builds the dataset at the given scale with enough samples for
    /// batches up to `max_batch`.
    pub fn dataset(&self, scale: Scale, max_batch: usize, seed: u64) -> Dataset {
        match self {
            Workload::ImageNette => {
                let spc = (max_batch * 2).div_ceil(10).max(8);
                oasis_data::imagenette_like_with(spc, scale.imagenette_side(), seed)
            }
            Workload::Cifar100 => {
                let spc = (max_batch * 2).div_ceil(100).max(2);
                oasis_data::cifar100_like_at(spc, scale.cifar_side(), seed)
            }
        }
    }

    /// A 100-class variant at ImageNette resolution, used by the
    /// linear-model experiment where batches need ≥64 unique labels
    /// (the paper has ImageNet's label space available; we synthesize
    /// one).
    pub fn linear_dataset(&self, scale: Scale, seed: u64) -> Dataset {
        match self {
            Workload::ImageNette => synthetic_dataset(
                "ImageNet-like-100c",
                100,
                2,
                scale.imagenette_side(),
                seed,
            ),
            Workload::Cifar100 => synthetic_dataset("CIFAR100-like", 100, 2, scale.cifar_side(), seed),
        }
    }
}

/// Calibration images (the "coarse data statistics" the attacker is
/// assumed to know) drawn from a disjoint seed.
pub fn calibration_images(workload: Workload, scale: Scale, count: usize) -> Vec<Image> {
    let ds = workload.dataset(scale, count, 0xCA11B);
    ds.items().iter().take(count).map(|it| it.image.clone()).collect()
}

/// Runs `attack` against `trials` batches of size `batch_size` under
/// `defense`, pooling all matched PSNRs.
#[allow(clippy::too_many_arguments)]
pub fn pooled_attack_psnrs(
    attack: &dyn ActiveAttack,
    dataset: &Dataset,
    batch_size: usize,
    defense: &dyn BatchPreprocessor,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pooled = Vec::new();
    for trial in 0..trials {
        let batch = dataset.sample_batch(batch_size.min(dataset.len()), &mut rng);
        let outcome = run_attack(attack, &batch, defense, dataset.num_classes(), seed ^ trial as u64)
            .expect("attack execution");
        pooled.extend(outcome.matched_psnrs);
    }
    pooled
}

/// The named policies in the order of the paper's Figure 5 legend.
pub fn figure5_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Without,
        PolicyKind::MajorRotation,
        PolicyKind::MinorRotation,
        PolicyKind::Shearing,
        PolicyKind::HorizontalFlip,
        PolicyKind::VerticalFlip,
    ]
}

/// The named policies in the order of the paper's Figure 6 legend.
pub fn figure6_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Without,
        PolicyKind::Shearing,
        PolicyKind::MajorRotation,
        PolicyKind::MajorRotationShearing,
    ]
}

/// Ensures `out/` exists and returns the path of `name` inside it.
pub fn out_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("out");
    std::fs::create_dir_all(dir).expect("create out dir");
    dir.join(name)
}

/// Prints a standard experiment header.
pub fn banner(figure: &str, description: &str, scale: Scale) {
    println!("==========================================================");
    println!("{figure}: {description}");
    println!("scale: {scale:?} (use --quick / --full to change)");
    println!("==========================================================");
}

/// Batches drawn for the visual figures (fixed, documented seed).
pub fn visual_batch(workload: Workload, scale: Scale, batch_size: usize, seed: u64) -> Batch {
    let ds = workload.dataset(scale, batch_size, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF16);
    ds.sample_batch(batch_size.min(ds.len()), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_monotone_grids() {
        assert!(Scale::Quick.grid_batches().len() < Scale::Full.grid_batches().len());
        assert!(Scale::Quick.grid_neurons().len() < Scale::Full.grid_neurons().len());
    }

    #[test]
    fn full_grid_matches_paper_axes() {
        assert_eq!(Scale::Full.grid_batches(), vec![8, 16, 32, 64, 96, 128, 160, 192, 224, 256]);
        assert_eq!(
            Scale::Full.grid_neurons(),
            vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
    }

    #[test]
    fn workload_datasets_have_expected_classes() {
        let i = Workload::ImageNette.dataset(Scale::Quick, 8, 1);
        assert_eq!(i.num_classes(), 10);
        let c = Workload::Cifar100.dataset(Scale::Quick, 8, 1);
        assert_eq!(c.num_classes(), 100);
    }

    #[test]
    fn datasets_are_large_enough_for_max_batch() {
        let ds = Workload::ImageNette.dataset(Scale::Quick, 64, 1);
        assert!(ds.len() >= 64);
    }

    #[test]
    fn linear_datasets_have_100_classes() {
        for w in [Workload::ImageNette, Workload::Cifar100] {
            assert_eq!(w.linear_dataset(Scale::Quick, 0).num_classes(), 100);
        }
    }

    #[test]
    fn figure_policy_lists_match_paper_legends() {
        assert_eq!(figure5_policies().len(), 6);
        assert_eq!(figure6_policies().len(), 4);
        assert_eq!(figure6_policies()[3], PolicyKind::MajorRotationShearing);
    }
}
