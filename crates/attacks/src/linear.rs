//! Gradient inversion on linear models (paper §IV-D).
//!
//! The most restrictive setting from the literature: the model is a
//! single fully-connected layer trained with softmax (logistic
//! regression) loss, and each training batch contains images with
//! **unique labels**. The server needs no malicious modification at
//! all — the gradient row of each class is already dominated by the
//! one sample of that class, so plain Eq. 6 inversion per class row
//! reveals the data.

use oasis_image::Image;
use oasis_nn::{Linear, Sequential};
use oasis_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{dedupe_images, invert_neuron, ActiveAttack, AttackError, Result};

/// The linear-model inversion attack.
///
/// `classes` doubles as the number of "attacked neurons": each class
/// row of the weight matrix is one reconstruction channel.
#[derive(Debug, Clone)]
pub struct LinearModelAttack {
    classes: usize,
}

impl LinearModelAttack {
    /// Creates the attack for a `classes`-way linear model.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for fewer than 2 classes.
    pub fn new(classes: usize) -> Result<Self> {
        if classes < 2 {
            return Err(AttackError::BadConfig("need at least 2 classes".into()));
        }
        Ok(LinearModelAttack { classes })
    }
}

impl ActiveAttack for LinearModelAttack {
    fn name(&self) -> &'static str {
        "LinearInv"
    }

    fn attacked_neurons(&self) -> usize {
        self.classes
    }

    fn build_model(
        &self,
        geometry: (usize, usize, usize),
        classes: usize,
        seed: u64,
    ) -> Result<Sequential> {
        if classes != self.classes {
            return Err(AttackError::BadConfig(format!(
                "attack configured for {} classes, asked to build {classes}",
                self.classes
            )));
        }
        let (c, h, w) = geometry;
        let d = c * h * w;
        // An ordinary, honestly-initialized single-layer model: this
        // attack requires no tampering.
        let mut rng = StdRng::seed_from_u64(seed);
        let model_layer = Linear::new(d, classes, &mut rng);
        let mut model = Sequential::new();
        model.push(model_layer);
        Ok(model)
    }

    fn reconstruct(
        &self,
        grad_weight: &Tensor,
        grad_bias: &Tensor,
        geometry: (usize, usize, usize),
    ) -> Vec<Image> {
        let (c, h, w) = geometry;
        let mut pool = Vec::new();
        for class in 0..self.classes {
            if let Some(mut values) = invert_neuron(
                grad_weight.row(class).expect("class row"),
                grad_bias.data()[class],
            ) {
                // The softmax cross-terms scale the dominant sample by
                // (1−p)/(… ), so the raw ratio over- or under-shoots
                // the [0,1] range. Min-max normalization (the standard
                // presentation step for gradient-inversion outputs)
                // restores a comparable intensity range.
                let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                if hi - lo > 1e-9 {
                    for v in &mut values {
                        *v = (*v - lo) / (hi - lo);
                    }
                }
                if let Ok(img) = Image::from_vec(c, h, w, values) {
                    pool.push(img);
                }
            }
        }
        dedupe_images(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_attack;
    use oasis_data::{cifar_like_with, Batch};
    use oasis_fl::DefenseStack;

    #[test]
    fn unique_label_batch_leaks_content() {
        let ds = cifar_like_with(8, 3, 12, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let batch = ds.sample_batch_unique_labels(6, &mut rng);
        let attack = LinearModelAttack::new(8).unwrap();
        let outcome = run_attack(&attack, &batch, &DefenseStack::identity(), 8, 1).unwrap();
        // Linear inversion is approximate (softmax cross-terms), but
        // content must be clearly recognizable for most samples.
        assert!(
            outcome.mean_psnr() > 14.0,
            "mean PSNR {:.1} dB too low for undefended linear inversion",
            outcome.mean_psnr()
        );
    }

    #[test]
    fn duplicate_labels_blur_the_class_row() {
        // With two samples sharing a class, that class row mixes them:
        // the linear combination the paper's defense leverages via
        // same-label augmentation. Invert the target sample's class
        // row directly in both settings and compare.
        use crate::invert_neuron;
        use oasis_metrics::psnr;
        use oasis_nn::{softmax_cross_entropy, Layer, Linear, Mode};

        // Many classes keep the softmax cross-terms small (p ≈ 1/k),
        // as with the paper's CIFAR100/ImageNet label spaces — the
        // regime where the undefended class row is clean enough for
        // the blur effect to be visible.
        let classes = 100;
        let ds = cifar_like_with(classes, 2, 12, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let unique = ds.sample_batch_unique_labels(3, &mut rng);
        let mut dup_images = unique.images.clone();
        let mut dup_labels = unique.labels.clone();
        // Add a *rotated* copy of sample 0 with the same label —
        // exactly what the OASIS preprocessor does.
        dup_images.push(unique.images[0].rotate90(1));
        dup_labels.push(unique.labels[0]);
        let dup = Batch::new(dup_images, dup_labels);

        let attack = LinearModelAttack::new(classes).unwrap();
        let geometry = unique.images[0].dims();
        let class_row = unique.labels[0];

        let invert_class_row = |batch: &Batch| -> f64 {
            let mut model = attack.build_model(geometry, classes, 1).unwrap();
            let x = batch.to_matrix();
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &batch.labels).unwrap();
            model.backward(&out.grad).unwrap();
            let lin = model.layer_as::<Linear>(0).unwrap();
            let mut values = invert_neuron(
                lin.grad_weight().row(class_row).unwrap(),
                lin.grad_bias().data()[class_row],
            )
            .expect("class row has signal");
            let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for v in &mut values {
                *v = (*v - lo) / (hi - lo);
            }
            let rec =
                oasis_image::Image::from_vec(geometry.0, geometry.1, geometry.2, values).unwrap();
            psnr(&rec, &unique.images[0])
        };

        let clean = invert_class_row(&unique);
        let blurred = invert_class_row(&dup);
        assert!(
            blurred < clean,
            "mixing a rotated copy into the class row must blur it: {blurred:.1} vs {clean:.1} dB"
        );
    }

    #[test]
    fn constructor_validates() {
        assert!(LinearModelAttack::new(1).is_err());
        assert!(LinearModelAttack::new(2).is_ok());
    }

    #[test]
    fn build_rejects_mismatched_classes() {
        let attack = LinearModelAttack::new(4).unwrap();
        assert!(attack.build_model((1, 4, 4), 5, 0).is_err());
    }
}
