//! Curious Abandon Honesty (CAH) — the trap-weights attack of
//! Boenisch et al. (EuroS&P 2023), reimplemented from the paper's
//! construction.
//!
//! The malicious layer's rows are *trap weights*: random vectors in
//! which a random half of the coordinates is negated and rescaled by a
//! factor γ. For non-negative inputs (images), γ (or, in the
//! calibrated variant, a per-row bias at a data quantile) controls the
//! probability that a neuron activates; the attacker tunes it so each
//! neuron fires for only a small fraction of inputs. A neuron
//! activated by exactly one sample yields that sample *exactly* via
//! Eq. 6 inversion.
//!
//! Two constructors:
//!
//! * [`CahAttack::new`] — the paper-literal variant: zero biases,
//!   activation controlled only by the global γ. Per-row activation
//!   probabilities are over-dispersed (some rows fire for most
//!   inputs, many never fire).
//! * [`CahAttack::calibrated`] — the strongest-attack configuration
//!   used by the evaluation (the OASIS paper configures every attack
//!   "to have the highest success rate", §IV-A): each row's bias is
//!   set at the `1−p` quantile of that row's response over a
//!   calibration set, pinning every neuron's activation probability
//!   at the target `p`.

use oasis_image::Image;
use oasis_nn::Sequential;
use oasis_tensor::{parallel, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::inversion::PAR_MIN_SWEEP_ELEMS;
use crate::{attacked_model, dedupe_images, invert_neuron, ActiveAttack, AttackError, Result};

/// Default activation probability target.
///
/// A fixed 10% target (rather than `1/B` per batch size) reproduces
/// the paper's qualitative findings: near-perfect reconstruction of
/// undefended small batches, degradation at batch 64 (Figure 4's
/// trend), and the MR-fails-at-B=8 / MR+SH-succeeds contrast of
/// Figure 6. The mechanism is binomial collision: a neuron leaks a
/// sample with probability `p·(1−p)^{m−1}` where `m` is the effective
/// batch size, so expanding `m` from 32 (MR) to 56 (MR+SH) multiplies
/// the leak rate by `(1−p)^{24} ≈ 0.08` — exactly the integration
/// effect the paper reports.
pub const DEFAULT_ACTIVATION_TARGET: f64 = 0.10;

/// The CAH trap-weights attack.
#[derive(Debug, Clone)]
pub struct CahAttack {
    neurons: usize,
    gamma: f32,
    weight_seed: u64,
    /// Per-row biases from quantile calibration (None ⇒ zero biases).
    biases: Option<Vec<f32>>,
    /// Input dimension the biases were calibrated for.
    calibrated_dim: Option<usize>,
}

impl CahAttack {
    /// Paper-literal trap weights: zero biases, activation controlled
    /// by the global negative-scaling factor γ.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for zero neurons or γ ≤ 0.
    pub fn new(neurons: usize, gamma: f32, weight_seed: u64) -> Result<Self> {
        if neurons == 0 {
            return Err(AttackError::BadConfig("CAH needs at least 1 neuron".into()));
        }
        if gamma <= 0.0 {
            return Err(AttackError::BadConfig("gamma must be positive".into()));
        }
        Ok(CahAttack {
            neurons,
            gamma,
            weight_seed,
            biases: None,
            calibrated_dim: None,
        })
    }

    /// Strongest-attack variant: per-row biases at the `1−target`
    /// response quantile over `calibration` images, pinning each
    /// neuron's activation probability at `target`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Calibration`] if the calibration set is
    /// empty or the target is not in `(0, 1)`.
    pub fn calibrated(
        neurons: usize,
        target: f64,
        calibration: &[Image],
        weight_seed: u64,
    ) -> Result<Self> {
        if calibration.is_empty() {
            return Err(AttackError::Calibration("empty calibration set".into()));
        }
        if !(target > 0.0 && target < 1.0) {
            return Err(AttackError::Calibration(format!(
                "unreachable target {target}"
            )));
        }
        let d = calibration[0].numel();
        let gamma = 1.0f32;
        let w = trap_weights(neurons, d, gamma, weight_seed);
        let mut biases = Vec::with_capacity(neurons);
        for r in 0..neurons {
            let row = w.row(r).expect("row in bounds");
            let mut responses: Vec<f32> = calibration
                .iter()
                .map(|img| row.iter().zip(img.data()).map(|(&a, &b)| a * b).sum())
                .collect();
            responses.sort_by(f32::total_cmp);
            // Bias at the (1−target) quantile: P(z > −b) ≈ target.
            let pos = ((1.0 - target) * (responses.len() - 1) as f64).round() as usize;
            biases.push(-responses[pos]);
        }
        Ok(CahAttack {
            neurons,
            gamma,
            weight_seed,
            biases: Some(biases),
            calibrated_dim: Some(d),
        })
    }

    /// The negative-scaling factor γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Whether per-row quantile biases are installed.
    pub fn is_calibrated(&self) -> bool {
        self.biases.is_some()
    }
}

/// Builds `rows` trap-weight rows of width `d`: |N(0,1)| magnitudes, a
/// random half of coordinates negated and scaled by γ.
fn trap_weights(rows: usize, d: usize, gamma: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Tensor::randn(&[rows, d], &mut rng).map(f32::abs);
    let mut indices: Vec<usize> = (0..d).collect();
    for r in 0..rows {
        indices.shuffle(&mut rng);
        let row = w.row_mut(r).expect("row in bounds");
        for &i in indices.iter().take(d / 2) {
            row[i] *= -gamma;
        }
    }
    // Normalize rows so pre-activations stay O(1) for unit images.
    let scale = 1.0 / (d as f32).sqrt();
    w.scale_in_place(scale);
    w
}

impl ActiveAttack for CahAttack {
    fn name(&self) -> &'static str {
        "CAH"
    }

    fn attacked_neurons(&self) -> usize {
        self.neurons
    }

    fn build_model(
        &self,
        geometry: (usize, usize, usize),
        classes: usize,
        seed: u64,
    ) -> Result<Sequential> {
        let (c, h, w) = geometry;
        let d = c * h * w;
        if let Some(cal_d) = self.calibrated_dim {
            if cal_d != d {
                return Err(AttackError::BadConfig(format!(
                    "attack calibrated for d={cal_d}, asked to build d={d}"
                )));
            }
        }
        let weight = trap_weights(self.neurons, d, self.gamma, self.weight_seed);
        let bias = match &self.biases {
            Some(b) => Tensor::from_slice(b),
            None => Tensor::zeros(&[self.neurons]),
        };
        attacked_model(weight, bias, classes, seed)
    }

    fn reconstruct(
        &self,
        grad_weight: &Tensor,
        grad_bias: &Tensor,
        geometry: (usize, usize, usize),
    ) -> Vec<Image> {
        let (c, h, w) = geometry;
        let d = c * h * w;
        let invert_trap = |i: usize| -> Option<Image> {
            invert_neuron(
                grad_weight.row(i).expect("row in bounds"),
                grad_bias.data()[i],
            )
            .and_then(|values| Image::from_vec(c, h, w, values).ok())
        };
        // Per-trap-neuron Eq. 6 inversions are independent — fan the
        // sweep out across the worker pool, keeping index order so
        // dedupe sees the same candidate sequence at any thread count.
        let candidates = parallel::map_range_min(
            self.neurons,
            self.neurons * d,
            PAR_MIN_SWEEP_ELEMS,
            invert_trap,
        );
        dedupe_images(candidates.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use oasis_metrics::match_greedy;
    use oasis_nn::{softmax_cross_entropy, Layer, Linear, Mode};

    fn structured_images(count: usize, side: usize, seed: u64) -> Vec<Image> {
        let ds = cifar_like_with(count, 1, side, seed);
        ds.items().iter().map(|it| it.image.clone()).collect()
    }

    #[test]
    fn trap_weights_have_half_negative_entries() {
        let w = trap_weights(10, 100, 2.0, 0);
        for r in 0..10 {
            let neg = w.row(r).unwrap().iter().filter(|&&v| v < 0.0).count();
            assert_eq!(neg, 50, "row {r} has {neg} negative entries");
        }
    }

    #[test]
    fn calibration_pins_per_row_activation_probability() {
        let imgs = structured_images(96, 12, 5);
        let target = 0.1;
        let attack = CahAttack::calibrated(32, target, &imgs, 7).unwrap();
        assert!(attack.is_calibrated());
        // Measure per-row activation on a fresh sample of images.
        let fresh = structured_images(80, 12, 99);
        let d = fresh[0].numel();
        let w = trap_weights(32, d, attack.gamma(), 7);
        let biases = attack.biases.as_ref().unwrap();
        let mut rates = Vec::new();
        for (r, &bias) in biases.iter().enumerate().take(32) {
            let row = w.row(r).unwrap();
            let active = fresh
                .iter()
                .filter(|img| {
                    let z: f32 = row.iter().zip(img.data()).map(|(&a, &b)| a * b).sum();
                    z + bias > 0.0
                })
                .count();
            rates.push(active as f64 / fresh.len() as f64);
        }
        let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (mean_rate - target).abs() < 0.08,
            "mean per-row activation {mean_rate} far from target {target}"
        );
    }

    #[test]
    fn higher_gamma_means_fewer_activations() {
        let imgs = structured_images(32, 10, 3);
        let d = imgs[0].numel();
        let count_active = |gamma: f32| -> usize {
            let w = trap_weights(64, d, gamma, 11);
            let mut active = 0;
            for img in &imgs {
                for r in 0..64 {
                    let z: f32 = w
                        .row(r)
                        .unwrap()
                        .iter()
                        .zip(img.data())
                        .map(|(&a, &b)| a * b)
                        .sum();
                    if z > 0.0 {
                        active += 1;
                    }
                }
            }
            active
        };
        assert!(count_active(0.5) > count_active(4.0));
    }

    #[test]
    fn undefended_batch_leaks_samples() {
        // CAH against an undefended batch: singleton-activated neurons
        // must reconstruct samples perfectly.
        let calib = structured_images(96, 12, 1);
        let attack = CahAttack::calibrated(192, DEFAULT_ACTIVATION_TARGET, &calib, 13).unwrap();
        let batch = structured_images(6, 12, 9);
        let geometry = batch[0].dims();
        let mut model = attack.build_model(geometry, 10, 0).unwrap();

        let d = geometry.0 * geometry.1 * geometry.2;
        let mut x = Tensor::zeros(&[6, d]);
        for (i, img) in batch.iter().enumerate() {
            x.row_mut(i).unwrap().copy_from_slice(img.data());
        }
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4, 5]).unwrap();
        model.backward(&out.grad).unwrap();

        let lin = model.layer_as::<Linear>(0).unwrap();
        let recons = attack.reconstruct(lin.grad_weight(), lin.grad_bias(), geometry);
        assert!(!recons.is_empty(), "no reconstructions at all");
        let matches = match_greedy(&recons, &batch);
        let perfect = matches.iter().filter(|m| m.psnr > 100.0).count();
        assert!(
            perfect >= 4,
            "only {perfect}/6 samples leaked; PSNRs: {:?}",
            matches.iter().map(|m| m.psnr as i64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn build_rejects_mismatched_dimension() {
        let calib = structured_images(16, 8, 2);
        let attack = CahAttack::calibrated(16, 0.1, &calib, 0).unwrap();
        assert!(attack.build_model((3, 8, 8), 4, 0).is_ok());
        assert!(attack.build_model((3, 16, 16), 4, 0).is_err());
    }

    #[test]
    fn constructor_validates() {
        assert!(CahAttack::new(0, 1.0, 0).is_err());
        assert!(CahAttack::new(10, 0.0, 0).is_err());
        assert!(CahAttack::new(10, 1.0, 0).is_ok());
    }

    #[test]
    fn calibration_rejects_empty_and_bad_targets() {
        let imgs = structured_images(4, 8, 0);
        assert!(CahAttack::calibrated(8, 0.1, &[], 0).is_err());
        assert!(CahAttack::calibrated(8, 0.0, &imgs, 0).is_err());
        assert!(CahAttack::calibrated(8, 1.5, &imgs, 0).is_err());
    }
}
