//! Standard-normal quantile function (probit).
//!
//! The RTF attack places its bias cutoffs at the quantiles of the
//! measurement distribution, which it models as Gaussian from coarse
//! data statistics. This is Acklam's rational approximation of Φ⁻¹,
//! accurate to ~1.15e-9 over (0, 1).

/// Inverse of the standard normal CDF.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0,1), got {p}");

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF (via `erf`-free Abramowitz–Stegun 7.1.26
/// complement), used in tests and in the CAH activation calibration.
pub fn normal_cdf(x: f64) -> f64 {
    // Φ(x) = 1 − φ(x)(b1 t + b2 t² + … + b5 t⁵), t = 1/(1+px), x ≥ 0.
    const P: f64 = 0.231_641_9;
    const B: [f64; 5] = [
        0.319_381_530,
        -0.356_563_782,
        1.781_477_937,
        -1.821_255_978,
        1.330_274_429,
    ];
    let ax = x.abs();
    let t = 1.0 / (1.0 + P * ax);
    let phi = (-(ax * ax) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let poly = t * (B[0] + t * (B[1] + t * (B[2] + t * (B[3] + t * B[4]))));
    let upper = phi * poly;
    if x >= 0.0 {
        1.0 - upper
    } else {
        upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959_964).abs() < 1e-5);
        assert!((probit(0.025) + 1.959_964).abs() < 1e-5);
        assert!((probit(0.841_344_75) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn symmetric_about_half() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            assert!((probit(p) + probit(1.0 - p)).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let v = probit(i as f64 / 100.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "probit requires")]
    fn rejects_zero() {
        probit(0.0);
    }

    #[test]
    fn cdf_inverts_probit() {
        for &p in &[0.05, 0.2, 0.5, 0.8, 0.95] {
            let x = probit(p);
            assert!((normal_cdf(x) - p).abs() < 1e-4, "p={p}");
        }
    }

    #[test]
    fn cdf_tails() {
        assert!(normal_cdf(-8.0) < 1e-8);
        assert!(normal_cdf(8.0) > 1.0 - 1e-8);
    }
}
