//! Quantile-based bias initialization (QBI) — the cheap,
//! optimization-free active attack of Krauß et al. (arXiv
//! 2406.18745), reimplemented from the paper's construction.
//!
//! Where CAH engineers sparse activation through *trap weights*
//! (negated-and-rescaled coordinate halves), QBI keeps the first
//! layer's weights as plain Gaussian rows and does all the work in
//! the **biases**: each row's bias is placed at a response quantile
//! over a calibration set so that the neuron activates for a target
//! fraction `p` of inputs. For a batch of size `B`, the probability
//! that a neuron is activated by *exactly one* sample — the
//! single-activation condition under which Eq. 6 inversion returns
//! that sample verbatim — is `B·p·(1−p)^{B−1}`, maximized at
//! `p* = 1/B`. That is the whole attack: no optimization loop, no
//! weight crafting, just one quantile scan per neuron. Between
//! rounds an adversary can re-tune `p*` to a new batch size at the
//! cost of re-sorting cached responses, which is what makes QBI the
//! natural "switch target" for adaptive campaign adversaries.

use oasis_image::Image;
use oasis_nn::Sequential;
use oasis_tensor::{parallel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::inversion::PAR_MIN_SWEEP_ELEMS;
use crate::{attacked_model, dedupe_images, invert_neuron, ActiveAttack, AttackError, Result};

/// The batch size the default activation target is tuned for:
/// `p* = 1/B` with `B = 8`, the evaluation's default local batch.
pub const DEFAULT_QBI_BATCH: usize = 8;

/// The QBI attack: Gaussian first-layer rows, biases at the
/// `1 − 1/B` response quantile.
#[derive(Debug, Clone)]
pub struct QbiAttack {
    neurons: usize,
    /// Activation probability target (`1/B` for the tuned batch size).
    target: f64,
    weight_seed: u64,
    biases: Vec<f32>,
    /// Input dimension the biases were calibrated for.
    calibrated_dim: usize,
}

impl QbiAttack {
    /// Calibrates a QBI layer tuned for batch size `batch`: each
    /// row's bias is set at the `1 − 1/batch` quantile of that row's
    /// response over `calibration`, so every neuron fires for
    /// `p* = 1/batch` of inputs — the single-activation optimum.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for zero neurons or a batch
    /// size below 2, and [`AttackError::Calibration`] for an empty
    /// calibration set.
    pub fn calibrated(
        neurons: usize,
        batch: usize,
        calibration: &[Image],
        weight_seed: u64,
    ) -> Result<Self> {
        if neurons == 0 {
            return Err(AttackError::BadConfig("QBI needs at least 1 neuron".into()));
        }
        if batch < 2 {
            return Err(AttackError::BadConfig(
                "QBI batch target must be at least 2 (p* = 1/B)".into(),
            ));
        }
        if calibration.is_empty() {
            return Err(AttackError::Calibration("empty calibration set".into()));
        }
        let target = 1.0 / batch as f64;
        let d = calibration[0].numel();
        let w = gaussian_rows(neurons, d, weight_seed);
        let mut biases = Vec::with_capacity(neurons);
        for r in 0..neurons {
            let row = w.row(r).expect("row in bounds");
            let mut responses: Vec<f32> = calibration
                .iter()
                .map(|img| row.iter().zip(img.data()).map(|(&a, &b)| a * b).sum())
                .collect();
            responses.sort_by(f32::total_cmp);
            // Bias at the (1−target) quantile: P(z + b > 0) ≈ target.
            let pos = ((1.0 - target) * (responses.len() - 1) as f64).round() as usize;
            biases.push(-responses[pos]);
        }
        Ok(QbiAttack {
            neurons,
            target,
            weight_seed,
            biases,
            calibrated_dim: d,
        })
    }

    /// The activation probability target `p* = 1/B`.
    pub fn target(&self) -> f64 {
        self.target
    }
}

/// Plain Gaussian rows scaled `1/√d` — no trap structure; QBI's
/// selectivity comes entirely from the calibrated biases.
fn gaussian_rows(rows: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Tensor::randn(&[rows, d], &mut rng);
    w.scale_in_place(1.0 / (d as f32).sqrt());
    w
}

impl ActiveAttack for QbiAttack {
    fn name(&self) -> &'static str {
        "QBI"
    }

    fn attacked_neurons(&self) -> usize {
        self.neurons
    }

    fn build_model(
        &self,
        geometry: (usize, usize, usize),
        classes: usize,
        seed: u64,
    ) -> Result<Sequential> {
        let (c, h, w) = geometry;
        let d = c * h * w;
        if self.calibrated_dim != d {
            return Err(AttackError::BadConfig(format!(
                "attack calibrated for d={}, asked to build d={d}",
                self.calibrated_dim
            )));
        }
        let weight = gaussian_rows(self.neurons, d, self.weight_seed);
        let bias = Tensor::from_slice(&self.biases);
        attacked_model(weight, bias, classes, seed)
    }

    fn reconstruct(
        &self,
        grad_weight: &Tensor,
        grad_bias: &Tensor,
        geometry: (usize, usize, usize),
    ) -> Vec<Image> {
        let (c, h, w) = geometry;
        let d = c * h * w;
        let invert_row = |i: usize| -> Option<Image> {
            invert_neuron(
                grad_weight.row(i).expect("row in bounds"),
                grad_bias.data()[i],
            )
            .and_then(|values| Image::from_vec(c, h, w, values).ok())
        };
        // Same fan-out discipline as CAH: index order is preserved so
        // dedupe sees one candidate sequence at any thread count.
        let candidates = parallel::map_range_min(
            self.neurons,
            self.neurons * d,
            PAR_MIN_SWEEP_ELEMS,
            invert_row,
        );
        dedupe_images(candidates.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use oasis_metrics::match_greedy;
    use oasis_nn::{softmax_cross_entropy, Layer, Linear, Mode};

    fn structured_images(count: usize, side: usize, seed: u64) -> Vec<Image> {
        let ds = cifar_like_with(count, 1, side, seed);
        ds.items().iter().map(|it| it.image.clone()).collect()
    }

    #[test]
    fn calibration_pins_activation_near_one_over_b() {
        let imgs = structured_images(96, 12, 5);
        let attack = QbiAttack::calibrated(32, 8, &imgs, 7).unwrap();
        assert!((attack.target() - 0.125).abs() < 1e-12);
        let fresh = structured_images(80, 12, 99);
        let d = fresh[0].numel();
        let w = gaussian_rows(32, d, 7);
        let mut rates = Vec::new();
        for (r, &bias) in attack.biases.iter().enumerate() {
            let row = w.row(r).unwrap();
            let active = fresh
                .iter()
                .filter(|img| {
                    let z: f32 = row.iter().zip(img.data()).map(|(&a, &b)| a * b).sum();
                    z + bias > 0.0
                })
                .count();
            rates.push(active as f64 / fresh.len() as f64);
        }
        let mean_rate = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (mean_rate - 0.125).abs() < 0.08,
            "mean per-row activation {mean_rate} far from 1/8"
        );
    }

    #[test]
    fn undefended_batch_leaks_samples_without_optimization() {
        let calib = structured_images(96, 12, 1);
        let attack = QbiAttack::calibrated(192, 6, &calib, 13).unwrap();
        let batch = structured_images(6, 12, 9);
        let geometry = batch[0].dims();
        let mut model = attack.build_model(geometry, 10, 0).unwrap();

        let d = geometry.0 * geometry.1 * geometry.2;
        let mut x = Tensor::zeros(&[6, d]);
        for (i, img) in batch.iter().enumerate() {
            x.row_mut(i).unwrap().copy_from_slice(img.data());
        }
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4, 5]).unwrap();
        model.backward(&out.grad).unwrap();

        let lin = model.layer_as::<Linear>(0).unwrap();
        let recons = attack.reconstruct(lin.grad_weight(), lin.grad_bias(), geometry);
        assert!(!recons.is_empty(), "no reconstructions at all");
        let matches = match_greedy(&recons, &batch);
        let perfect = matches.iter().filter(|m| m.psnr > 100.0).count();
        assert!(
            perfect >= 3,
            "only {perfect}/6 samples leaked; PSNRs: {:?}",
            matches.iter().map(|m| m.psnr as i64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn build_rejects_mismatched_dimension() {
        let calib = structured_images(16, 8, 2);
        let attack = QbiAttack::calibrated(16, 8, &calib, 0).unwrap();
        assert!(attack.build_model((3, 8, 8), 4, 0).is_ok());
        assert!(attack.build_model((3, 16, 16), 4, 0).is_err());
    }

    #[test]
    fn constructor_validates() {
        let imgs = structured_images(4, 8, 0);
        assert!(QbiAttack::calibrated(0, 8, &imgs, 0).is_err());
        assert!(QbiAttack::calibrated(8, 1, &imgs, 0).is_err());
        assert!(QbiAttack::calibrated(8, 8, &[], 0).is_err());
        assert!(QbiAttack::calibrated(8, 8, &imgs, 0).is_ok());
    }
}
