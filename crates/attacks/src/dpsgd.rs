//! DP-SGD utility baseline.
//!
//! The related-work comparison: differentially-private SGD bounds
//! reconstruction leakage by clipping per-sample gradients and adding
//! Gaussian noise, but the noise needed to hide image content also
//! degrades accuracy (paper §I and §V). The attack harness measures
//! the privacy side when the defense stack carries a DP update stage
//! (`run_attack` with `oasis_fl::DpStage`); this module measures the
//! utility side by training a classifier under the same mechanism.

use oasis_data::Dataset;
use oasis_nn::{softmax_cross_entropy, Layer, Linear, Mode, Sequential};
use oasis_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Result;

/// DP-SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DpConfig {
    /// Per-sample gradient L2 clipping bound `C`.
    pub clip_norm: f32,
    /// Noise multiplier σ (noise std = `σ·C/B`).
    pub noise_multiplier: f32,
    /// Learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            learning_rate: 0.1,
            epochs: 5,
            batch_size: 16,
        }
    }
}

/// Trains a linear softmax classifier with DP-SGD and returns the
/// final test accuracy — one point of the DP utility/privacy
/// trade-off curve.
///
/// # Errors
///
/// Propagates model execution failures.
pub fn train_linear_with_dp(
    train: &Dataset,
    test: &Dataset,
    config: DpConfig,
    seed: u64,
) -> Result<f64> {
    let d = train.feature_dim();
    let classes = train.num_classes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Sequential::new();
    model.push(Linear::new(d, classes, &mut rng));

    for _ in 0..config.epochs {
        for batch in train.shuffled_batches(config.batch_size, &mut rng) {
            let b = batch.len();
            if b == 0 {
                continue;
            }
            // Per-sample clipped gradients.
            let mut acc: Option<Vec<f32>> = None;
            for i in 0..b {
                let xi = batch.images[i].to_tensor().reshape(&[1, d])?;
                model.zero_grad();
                let logits = model.forward(&xi, Mode::Train)?;
                let out = softmax_cross_entropy(&logits, &batch.labels[i..i + 1])?;
                model.backward(&out.grad)?;
                let g = oasis_nn::flatten_grads(&mut model);
                let norm = g.iter().map(|v| v * v).sum::<f32>().sqrt();
                let scale = if norm > config.clip_norm {
                    config.clip_norm / norm
                } else {
                    1.0
                };
                match &mut acc {
                    None => acc = Some(g.iter().map(|v| v * scale).collect()),
                    Some(a) => {
                        for (av, gv) in a.iter_mut().zip(&g) {
                            *av += gv * scale;
                        }
                    }
                }
            }
            let mut update = acc.expect("non-empty batch");
            let sigma = config.noise_multiplier * config.clip_norm / b as f32;
            let noise = Tensor::randn_scaled(&[update.len()], 0.0, sigma, &mut rng);
            for ((u, &nz), _) in update.iter_mut().zip(noise.data()).zip(0..) {
                *u = *u / b as f32 + nz;
            }
            // SGD step.
            let mut params = oasis_nn::flatten_params(&mut model);
            for (p, &g) in params.iter_mut().zip(&update) {
                *p -= config.learning_rate * g;
            }
            oasis_nn::load_params(&mut model, &params)?;
        }
    }
    oasis_fl::evaluate_accuracy(&mut model, test, config.batch_size).map_err(|e| match e {
        oasis_fl::FlError::Nn(nn) => crate::AttackError::Nn(nn),
        other => crate::AttackError::BadConfig(other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;

    fn split() -> (Dataset, Dataset) {
        let ds = cifar_like_with(3, 24, 8, 2);
        let mut rng = StdRng::seed_from_u64(0);
        ds.split(0.75, &mut rng)
    }

    #[test]
    fn no_noise_learns_separable_classes() {
        let (train, test) = split();
        let cfg = DpConfig {
            noise_multiplier: 0.0,
            clip_norm: 5.0,
            epochs: 12,
            learning_rate: 0.5,
            batch_size: 8,
        };
        let acc = train_linear_with_dp(&train, &test, cfg, 1).unwrap();
        assert!(acc > 0.5, "accuracy {acc} too low without noise");
    }

    #[test]
    fn heavy_noise_destroys_utility() {
        let (train, test) = split();
        let low_noise = DpConfig {
            noise_multiplier: 0.0,
            clip_norm: 5.0,
            epochs: 12,
            learning_rate: 0.5,
            batch_size: 8,
        };
        let heavy_noise = DpConfig {
            noise_multiplier: 50.0,
            ..low_noise
        };
        let clean = train_linear_with_dp(&train, &test, low_noise, 1).unwrap();
        let noisy = train_linear_with_dp(&train, &test, heavy_noise, 1).unwrap();
        assert!(
            noisy < clean,
            "heavy DP noise should reduce accuracy: {noisy} vs {clean}"
        );
    }
}
