//! Error type for attack construction and execution.

use oasis_nn::NnError;
use oasis_tensor::TensorError;
use std::fmt;

/// Errors produced while building or running attacks.
#[derive(Debug)]
pub enum AttackError {
    /// Model execution failed.
    Nn(NnError),
    /// Tensor algebra failed (shape bug).
    Tensor(TensorError),
    /// The attack was configured inconsistently.
    BadConfig(String),
    /// Calibration could not fit the requested statistic.
    Calibration(String),
    /// The update could not cross the wire (codec failure).
    Wire(oasis_wire::WireError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Nn(e) => write!(f, "model error: {e}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::BadConfig(msg) => write!(f, "bad attack configuration: {msg}"),
            AttackError::Calibration(msg) => write!(f, "calibration failed: {msg}"),
            AttackError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            AttackError::Tensor(e) => Some(e),
            AttackError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<oasis_wire::WireError> for AttackError {
    fn from(e: oasis_wire::WireError) -> Self {
        AttackError::Wire(e)
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        for e in [
            AttackError::BadConfig("x".into()),
            AttackError::Calibration("y".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
