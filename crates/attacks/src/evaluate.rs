//! The attack-evaluation harness: run an attack against a (possibly
//! defended) client batch, reconstruct, match, and summarize — the
//! code path behind every PSNR number in the paper's figures.

use oasis_data::Batch;
use oasis_fl::DefenseStack;
use oasis_image::Image;
use oasis_metrics::{best_psnr_per_original, match_greedy_coarse, ReconstructionMatch, Summary};
use oasis_nn::{
    flatten_grads, load_grads, param_count, softmax_cross_entropy, Layer, Linear, Mode, Sequential,
};
use oasis_tensor::Tensor;
use oasis_wire::UpdateCodec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{AttackError, Result};

/// An active reconstruction attack by a dishonest server.
///
/// Implementations build the malicious global model (their
/// [`oasis_fl::ModelTamper`]-style capability) and invert the
/// gradients the victim uploads.
pub trait ActiveAttack: Send + Sync {
    /// Display name ("RTF", "CAH", …).
    fn name(&self) -> &'static str;

    /// Number of attacked neurons `n`.
    fn attacked_neurons(&self) -> usize;

    /// Builds the malicious model for inputs of the given image
    /// geometry and `classes` output classes.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration cannot produce a model.
    fn build_model(
        &self,
        geometry: (usize, usize, usize),
        classes: usize,
        seed: u64,
    ) -> Result<Sequential>;

    /// Inverts the gradients of the malicious layer into candidate
    /// image reconstructions.
    fn reconstruct(
        &self,
        grad_weight: &Tensor,
        grad_bias: &Tensor,
        geometry: (usize, usize, usize),
    ) -> Vec<Image>;
}

/// What the client's update looked like on the wire during an
/// attacked round (present when the round ran over a codec).
#[derive(Debug, Clone, PartialEq)]
pub struct WireTrace {
    /// Spec string of the codec the update crossed.
    pub codec: String,
    /// Uncompressed update size (`4·n` for the full model update).
    pub raw_bytes: usize,
    /// Encoded update size actually on the wire.
    pub encoded_bytes: usize,
    /// Malicious-model broadcast size (downlink).
    pub broadcast_bytes: usize,
}

impl WireTrace {
    /// `raw / encoded` — > 1 means the codec compresses.
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.encoded_bytes as f64
    }
}

/// Everything the figures need from one attack execution.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// One-to-one reconstruction↔original matches, best first.
    pub matches: Vec<ReconstructionMatch>,
    /// PSNR of each match (the values behind the paper's boxplots).
    pub matched_psnrs: Vec<f64>,
    /// Summary statistics of `matched_psnrs` (the reported averages).
    pub summary: Summary,
    /// For every original sample, the best PSNR any reconstruction
    /// achieved against it (per-sample leakage).
    pub per_original_best: Vec<f64>,
    /// The deduplicated reconstruction pool (for the visual figures).
    pub reconstructions: Vec<Image>,
    /// The batch the client actually trained on (`D` or `D′`).
    pub processed_images: Vec<Image>,
    /// The client's loss during the attacked round (diagnostic).
    pub client_loss: f32,
    /// Wire provenance of the attacked update (None when the round
    /// ran in-process, without a codec).
    pub wire: Option<WireTrace>,
}

impl AttackOutcome {
    /// Mean matched PSNR — the single number in the paper's grid
    /// figures (Figures 3 and 4).
    pub fn mean_psnr(&self) -> f64 {
        self.summary.mean
    }

    /// Fraction of originals whose best reconstruction exceeds
    /// `threshold_db` — a leak-rate view used by the Proposition 1
    /// ablation.
    pub fn leak_rate(&self, threshold_db: f64) -> f64 {
        if self.per_original_best.is_empty() {
            return 0.0;
        }
        let leaked = self
            .per_original_best
            .iter()
            .filter(|&&p| p > threshold_db)
            .count();
        leaked as f64 / self.per_original_best.len() as f64
    }
}

/// Side of coarse downsampling used for match *selection* (matched
/// pairs are re-scored at full resolution).
const COARSE_MATCH_SIDE: usize = 8;

/// Runs one attacked FL round: the server dispatches the malicious
/// model, the client runs its [`DefenseStack`] (batch stages on the
/// sampled batch, update stages on the uploaded update), the attacker
/// inverts what it receives.
///
/// Stacks without an update stage upload the exact full-batch
/// gradient. Stacks that clip ([`DefenseStack::clip_norm`]) switch
/// the client onto the per-sample gradient path: each sample's
/// malicious-layer gradient is clipped to the bound before averaging
/// (record-level DP-SGD), and only the malicious layer's update is
/// uploaded — then every update stage's perturbation applies.
///
/// PSNRs are always computed against the **original** batch `D` — the
/// private data the defense is protecting — regardless of what the
/// client trained on.
///
/// # Errors
///
/// Propagates model-construction and execution failures.
pub fn run_attack(
    attack: &dyn ActiveAttack,
    batch: &Batch,
    defense: &DefenseStack,
    classes: usize,
    seed: u64,
) -> Result<AttackOutcome> {
    run_attack_inner(attack, batch, defense, classes, seed, None)
}

/// Like [`run_attack`], but the client's update crosses the wire: the
/// flat update is encoded with `codec`, decoded server-side, and the
/// attacker inverts what the *decoded* gradients say — lossy codecs
/// therefore degrade reconstruction, a new result surface. The
/// outcome's [`AttackOutcome::wire`] records codec provenance and
/// exact bytes on the wire. With the lossless `raw` codec this
/// reproduces the in-process numbers bit-exactly.
///
/// # Errors
///
/// Propagates model-construction, execution, and codec failures.
pub fn run_attack_over_wire(
    attack: &dyn ActiveAttack,
    batch: &Batch,
    defense: &DefenseStack,
    classes: usize,
    seed: u64,
    codec: &dyn UpdateCodec,
) -> Result<AttackOutcome> {
    run_attack_inner(attack, batch, defense, classes, seed, Some(codec))
}

/// The shared attacked-round harness behind [`run_attack`] and
/// [`run_attack_over_wire`]: build the malicious model, run the
/// stack's batch stages, compute the uploaded gradients (exact, or
/// per-sample-clipped when the stack clips), run the stack's update
/// stages, optionally round-trip the update through a wire codec,
/// invert, and score.
fn run_attack_inner(
    attack: &dyn ActiveAttack,
    batch: &Batch,
    defense: &DefenseStack,
    classes: usize,
    seed: u64,
    codec: Option<&dyn UpdateCodec>,
) -> Result<AttackOutcome> {
    let setup_span = oasis_telemetry::span("attack.setup");
    let geometry = batch
        .images
        .first()
        .ok_or_else(|| AttackError::BadConfig("empty batch".into()))?
        .dims();
    let mut model = attack.build_model(geometry, classes, seed)?;
    let broadcast_bytes = param_count(&mut model) * 4;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00DE_F317);
    let processed = defense.process_batch(batch, &mut rng);
    drop(setup_span);
    let mut wire: Option<WireTrace> = None;
    // The server reconstructs from what it *receives*: when a codec
    // is installed, the client's full flat update crosses the wire
    // (encode → decode) before the attacker reads the malicious
    // layer's gradients out of it.
    let mut transmit = |update: Vec<f32>| -> Result<Vec<f32>> {
        match codec {
            None => Ok(update),
            Some(codec) => {
                let encoded = codec.encode(&update)?;
                wire = Some(WireTrace {
                    codec: encoded.codec.clone(),
                    raw_bytes: encoded.raw_byte_size(),
                    encoded_bytes: encoded.byte_size(),
                    broadcast_bytes,
                });
                // Decode lands back in the buffer the update left in
                // — the frame's element count is the update length by
                // construction, so no fresh allocation is needed.
                let mut received = update;
                codec.decode_to(&encoded, &mut received)?;
                Ok(received)
            }
        }
    };

    let (recons, loss) = match defense.clip_norm() {
        None => {
            // The exact-gradient path: one full-batch backward pass.
            let client_span = oasis_telemetry::span("attack.client_step");
            let x = processed.to_matrix();
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train)?;
            let out = softmax_cross_entropy(&logits, &processed.labels)?;
            model.backward(&out.grad)?;
            let mut update = flatten_grads(&mut model);
            defense.perturb_update(&mut update, processed.len(), &mut rng);
            let received = transmit(update)?;
            load_grads(&mut model, &received)?;
            let lin = malicious_layer(&model)?;
            drop(client_span);
            let recon_span = oasis_telemetry::span("attack.reconstruct");
            let recons = attack.reconstruct(lin.grad_weight(), lin.grad_bias(), geometry);
            drop(recon_span);
            (recons, out.loss)
        }
        Some(clip_norm) => {
            // The per-sample path (record-level DP-SGD): per-sample
            // gradients, clipped then averaged, then the stack's
            // update stages (e.g. Gaussian noise of std
            // `σ · C / B` from the DP stage).
            let client_span = oasis_telemetry::span("attack.client_step");
            let b = processed.len();
            let d = geometry.0 * geometry.1 * geometry.2;
            let n = attack.attacked_neurons();
            let mut sum_gw = Tensor::zeros(&[n, d]);
            let mut sum_gb = Tensor::zeros(&[n]);
            let mut total_loss = 0.0f32;
            for i in 0..b {
                let xi = processed.images[i].to_tensor().reshape(&[1, d])?;
                model.zero_grad();
                let logits = model.forward(&xi, Mode::Train)?;
                let out = softmax_cross_entropy(&logits, &processed.labels[i..i + 1])?;
                model.backward(&out.grad)?;
                total_loss += out.loss;
                let lin = malicious_layer(&model)?;
                // Clip the whole per-sample gradient (all layers would
                // be clipped in real DP-SGD; the malicious layer
                // dominates the norm here and is all the attacker
                // reads).
                let norm = (lin.grad_weight().norm_sq() + lin.grad_bias().norm_sq()).sqrt();
                let scale = if norm > clip_norm {
                    clip_norm / norm
                } else {
                    1.0
                };
                sum_gw.axpy(scale, lin.grad_weight())?;
                sum_gb.axpy(scale, lin.grad_bias())?;
            }
            let inv_b = 1.0 / b as f32;
            sum_gw.scale_in_place(inv_b);
            sum_gb.scale_in_place(inv_b);
            // Only the (perturbed) malicious-layer update is uploaded;
            // that is what crosses the wire.
            let mut update = sum_gw.data().to_vec();
            update.extend_from_slice(sum_gb.data());
            defense.perturb_update(&mut update, b, &mut rng);
            let received = transmit(update)?;
            let gw = Tensor::from_vec(received[..n * d].to_vec(), &[n, d])?;
            let gb = Tensor::from_vec(received[n * d..].to_vec(), &[n])?;
            drop(client_span);
            let recon_span = oasis_telemetry::span("attack.reconstruct");
            let recons = attack.reconstruct(&gw, &gb, geometry);
            drop(recon_span);
            (recons, total_loss * inv_b)
        }
    };

    Ok(score(recons, batch, &processed, loss, wire))
}

/// The attacked first layer the adversary reads gradients from.
fn malicious_layer(model: &Sequential) -> Result<&Linear> {
    model
        .layer_as::<Linear>(0)
        .ok_or_else(|| AttackError::BadConfig("malicious layer missing".into()))
}

fn score(
    recons: Vec<Image>,
    batch: &Batch,
    processed: &Batch,
    client_loss: f32,
    wire: Option<WireTrace>,
) -> AttackOutcome {
    let _span = oasis_telemetry::span("attack.score");
    // Clamp reconstructions into the displayable range before scoring,
    // mirroring how reconstructed images are rendered and compared.
    let recons: Vec<Image> = recons.into_iter().map(|r| r.clamp01()).collect();
    let matches = match_greedy_coarse(&recons, &batch.images, COARSE_MATCH_SIDE);
    let matched_psnrs: Vec<f64> = matches.iter().map(|m| m.psnr).collect();
    let summary = Summary::from_values(&matched_psnrs);
    let per_original_best = best_psnr_per_original(&recons, &batch.images);
    AttackOutcome {
        matches,
        matched_psnrs,
        summary,
        per_original_best,
        reconstructions: recons,
        processed_images: processed.images.clone(),
        client_loss,
        wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RtfAttack;
    use oasis_data::cifar_like_with;
    use oasis_fl::DpStage;

    fn batch_of(n: usize, side: usize, seed: u64) -> Batch {
        let ds = cifar_like_with(n, 1, side, seed);
        Batch::from_items(ds.items().to_vec())
    }

    #[test]
    fn undefended_rtf_outcome_is_near_perfect() {
        let calib = batch_of(64, 12, 1);
        let attack = RtfAttack::calibrated(128, &calib.images).unwrap();
        let batch = batch_of(6, 12, 2);
        let outcome = run_attack(&attack, &batch, &DefenseStack::identity(), 6, 3).unwrap();
        assert_eq!(outcome.matches.len(), 6);
        assert!(
            outcome.mean_psnr() > 80.0,
            "undefended mean PSNR {:.1} dB too low",
            outcome.mean_psnr()
        );
        assert!(outcome.leak_rate(60.0) > 0.5);
    }

    #[test]
    fn empty_batch_is_rejected() {
        let calib = batch_of(8, 8, 1);
        let attack = RtfAttack::calibrated(16, &calib.images).unwrap();
        let empty = Batch::new(vec![], vec![]);
        assert!(run_attack(&attack, &empty, &DefenseStack::identity(), 4, 0).is_err());
    }

    #[test]
    fn dp_noise_degrades_reconstruction() {
        let calib = batch_of(64, 10, 1);
        let attack = RtfAttack::calibrated(64, &calib.images).unwrap();
        let batch = batch_of(4, 10, 2);
        let clean = run_attack(&attack, &batch, &DefenseStack::identity(), 4, 3).unwrap();
        let dp = DefenseStack::of(DpStage::new(1.0, 10.0));
        let noisy = run_attack(&attack, &batch, &dp, 4, 3).unwrap();
        assert!(
            noisy.mean_psnr() < clean.mean_psnr(),
            "DP noise did not reduce PSNR: {:.1} vs {:.1}",
            noisy.mean_psnr(),
            clean.mean_psnr()
        );
    }

    #[test]
    fn raw_wire_reproduces_in_process_numbers_exactly() {
        let calib = batch_of(64, 10, 1);
        let attack = RtfAttack::calibrated(64, &calib.images).unwrap();
        let batch = batch_of(4, 10, 2);
        let in_process = run_attack(&attack, &batch, &DefenseStack::identity(), 4, 3).unwrap();
        let codec = oasis_wire::CodecSpec::Raw.build();
        let over_wire = run_attack_over_wire(
            &attack,
            &batch,
            &DefenseStack::identity(),
            4,
            3,
            codec.as_ref(),
        )
        .unwrap();
        assert_eq!(over_wire.matched_psnrs, in_process.matched_psnrs);
        let trace = over_wire.wire.expect("wire trace recorded");
        assert_eq!(trace.codec, "raw");
        assert!(trace.encoded_bytes > trace.raw_bytes, "header overhead");
        assert!(trace.broadcast_bytes > 0);
        assert!(in_process.wire.is_none());
    }

    #[test]
    fn lossy_wire_degrades_reconstruction() {
        let calib = batch_of(64, 10, 1);
        let attack = RtfAttack::calibrated(64, &calib.images).unwrap();
        let batch = batch_of(4, 10, 2);
        let clean = run_attack(&attack, &batch, &DefenseStack::identity(), 4, 3).unwrap();
        let sign = oasis_wire::CodecSpec::Sign.build();
        let noisy = run_attack_over_wire(
            &attack,
            &batch,
            &DefenseStack::identity(),
            4,
            3,
            sign.as_ref(),
        )
        .unwrap();
        assert!(
            noisy.mean_psnr() < clean.mean_psnr(),
            "1-bit updates should not reconstruct verbatim: {:.1} vs {:.1}",
            noisy.mean_psnr(),
            clean.mean_psnr()
        );
        assert!(noisy.wire.unwrap().compression_ratio() > 10.0);
    }

    #[test]
    fn leak_rate_bounds() {
        let calib = batch_of(16, 8, 1);
        let attack = RtfAttack::calibrated(32, &calib.images).unwrap();
        let batch = batch_of(3, 8, 2);
        let outcome = run_attack(&attack, &batch, &DefenseStack::identity(), 3, 0).unwrap();
        let rate = outcome.leak_rate(100.0);
        assert!((0.0..=1.0).contains(&rate));
    }
}
