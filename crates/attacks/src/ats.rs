//! ATSPrivacy-style baseline defense (Gao et al., CVPR 2021).
//!
//! This defense *replaces* each training image with a transformed
//! version (found by automatic transformation search in the original
//! work). The paper's Figure 14 shows why it fails against active
//! reconstruction attacks: the attack principle still applies — a
//! neuron activated by exactly one (transformed) image reconstructs
//! that image perfectly, and a rotated or sheared photo is still
//! recognizable content. OASIS differs structurally: it *adds*
//! transformed copies so that only linear combinations can be
//! extracted.

use oasis_augment::Transform;
use oasis_data::Batch;
use oasis_fl::{BatchStage, Defense};
use rand::rngs::StdRng;
use rand::Rng;

/// The transform-replacement defense.
#[derive(Debug, Clone)]
pub struct AtsDefense {
    transforms: Vec<Transform>,
}

impl AtsDefense {
    /// Uses an explicit transform pool; each image is replaced by a
    /// random pool member's output.
    pub fn new(transforms: Vec<Transform>) -> Self {
        assert!(!transforms.is_empty(), "ATS needs at least one transform");
        AtsDefense { transforms }
    }

    /// The policy-search result modeled after the ATSPrivacy search
    /// space: rotations and shears of moderate strength.
    pub fn searched() -> Self {
        AtsDefense::new(vec![
            Transform::rotation(30.0),
            Transform::rotation(45.0),
            Transform::MajorRotation { quarter_turns: 1 },
            Transform::shear(0.55),
            Transform::Compose(vec![Transform::rotation(30.0), Transform::shear(0.55)]),
        ])
    }
}

impl BatchStage for AtsDefense {
    fn process(&self, batch: &Batch, rng: &mut StdRng) -> Batch {
        let images = batch
            .images
            .iter()
            .map(|img| {
                let t = &self.transforms[rng.gen_range(0..self.transforms.len())];
                t.apply(img)
            })
            .collect();
        Batch::new(images, batch.labels.clone())
    }

    fn name(&self) -> &str {
        "ATS"
    }
}

impl Defense for AtsDefense {
    fn name(&self) -> &str {
        "ats"
    }

    fn batch_stage(&self) -> Option<&dyn BatchStage> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_data::cifar_like_with;
    use rand::SeedableRng;

    fn batch(n: usize) -> Batch {
        let ds = cifar_like_with(n, 1, 12, 0);
        Batch::from_items(ds.items().to_vec())
    }

    #[test]
    fn batch_size_is_preserved_not_expanded() {
        // The structural difference from OASIS: ATS replaces, OASIS adds.
        let b = batch(5);
        let mut rng = StdRng::seed_from_u64(1);
        let out = AtsDefense::searched().process(&b, &mut rng);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn images_are_transformed() {
        let b = batch(5);
        let mut rng = StdRng::seed_from_u64(1);
        let out = AtsDefense::searched().process(&b, &mut rng);
        let changed = out
            .images
            .iter()
            .zip(&b.images)
            .filter(|(a, o)| a != o)
            .count();
        assert_eq!(changed, 5, "every image must be replaced");
    }

    #[test]
    fn labels_are_preserved() {
        let b = batch(4);
        let mut rng = StdRng::seed_from_u64(2);
        let out = AtsDefense::searched().process(&b, &mut rng);
        assert_eq!(out.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "at least one transform")]
    fn rejects_empty_pool() {
        AtsDefense::new(vec![]);
    }
}
