//! Robbing the Fed (RTF) — the imprint-module attack of Fowl et al.
//! (ICLR 2022), reimplemented from the paper's construction.
//!
//! The dishonest server replaces the first fully-connected layer with
//! an *imprint module* of `n` neurons:
//!
//! * every row of `W` is the same measurement functional `h` — here
//!   the mean pixel intensity, `h(x) = (1/d)·Σ x_i`;
//! * bias `i` is `−c_i`, where `c_i` is the `(i+1)/(n+1)` quantile of
//!   `h(x)` under the data distribution (the server knows coarse data
//!   statistics and models `h` as a Gaussian).
//!
//! With ReLU, neuron `i` activates iff `h(x) > c_i`, so consecutive
//! neurons differ by exactly the samples landing in measurement bin
//! `(c_i, c_{i+1}]` — and the gradient *difference* of adjacent
//! neurons isolates those samples for Eq. 6 inversion.

use oasis_image::Image;
use oasis_nn::Sequential;
use oasis_tensor::{parallel, Tensor};

use crate::inversion::PAR_MIN_SWEEP_ELEMS;
use crate::{
    attacked_model, dedupe_images, invert_neuron, invert_neuron_difference, probit, ActiveAttack,
    AttackError, Result,
};

/// The RTF imprint attack.
#[derive(Debug, Clone)]
pub struct RtfAttack {
    neurons: usize,
    measurement_mean: f32,
    measurement_std: f32,
}

impl RtfAttack {
    /// Creates the attack with explicit Gaussian measurement
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] for zero neurons or
    /// non-positive std.
    pub fn new(neurons: usize, measurement_mean: f32, measurement_std: f32) -> Result<Self> {
        if neurons < 2 {
            return Err(AttackError::BadConfig(
                "RTF needs at least 2 neurons".into(),
            ));
        }
        if measurement_std <= 0.0 {
            return Err(AttackError::BadConfig(
                "measurement std must be positive".into(),
            ));
        }
        Ok(RtfAttack {
            neurons,
            measurement_mean,
            measurement_std,
        })
    }

    /// Calibrates the measurement distribution from sample images —
    /// the paper's assumption that the server knows coarse statistics
    /// of the data domain.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Calibration`] when fewer than two
    /// calibration images are supplied or they have zero variance.
    pub fn calibrated(neurons: usize, calibration: &[Image]) -> Result<Self> {
        if calibration.len() < 2 {
            return Err(AttackError::Calibration(
                "need at least 2 calibration images".into(),
            ));
        }
        let means: Vec<f32> = calibration.iter().map(Image::mean).collect();
        let mu = means.iter().sum::<f32>() / means.len() as f32;
        let var = means.iter().map(|m| (m - mu) * (m - mu)).sum::<f32>() / means.len() as f32;
        if var <= 0.0 {
            return Err(AttackError::Calibration(
                "calibration images have no variance".into(),
            ));
        }
        Self::new(neurons, mu, var.sqrt())
    }

    /// The bias cutoffs `c_1 < … < c_n`.
    pub fn cutoffs(&self) -> Vec<f32> {
        (0..self.neurons)
            .map(|i| {
                let p = (i + 1) as f64 / (self.neurons + 1) as f64;
                self.measurement_mean + self.measurement_std * probit(p) as f32
            })
            .collect()
    }
}

impl ActiveAttack for RtfAttack {
    fn name(&self) -> &'static str {
        "RTF"
    }

    fn attacked_neurons(&self) -> usize {
        self.neurons
    }

    fn build_model(
        &self,
        geometry: (usize, usize, usize),
        classes: usize,
        seed: u64,
    ) -> Result<Sequential> {
        let (c, h, w) = geometry;
        let d = c * h * w;
        // Every row is the measurement functional h(x) = mean(x).
        let row_value = 1.0 / d as f32;
        let mut weight = Tensor::full(&[self.neurons, d], row_value);
        let _ = weight.data_mut(); // rows identical by construction
        let cutoffs = self.cutoffs();
        let bias = Tensor::from_slice(&cutoffs.iter().map(|&c| -c).collect::<Vec<_>>());
        attacked_model(weight, bias, classes, seed)
    }

    fn reconstruct(
        &self,
        grad_weight: &Tensor,
        grad_bias: &Tensor,
        geometry: (usize, usize, usize),
    ) -> Vec<Image> {
        let (c, h, w) = geometry;
        let n = self.neurons;
        let d = c * h * w;
        let invert_bin = |i: usize| -> Option<Image> {
            let rec = if i + 1 < n {
                invert_neuron_difference(
                    grad_weight.row(i).expect("row in bounds"),
                    grad_bias.data()[i],
                    grad_weight.row(i + 1).expect("row in bounds"),
                    grad_bias.data()[i + 1],
                )
            } else {
                // Top bin: h(x) > c_n — the last neuron alone.
                invert_neuron(
                    grad_weight.row(i).expect("row in bounds"),
                    grad_bias.data()[i],
                )
            };
            rec.and_then(|values| Image::from_vec(c, h, w, values).ok())
        };
        // Each bin inverts independently — the sweep fans out across
        // the worker pool (in index order, so the pool fed to dedupe
        // is the same sequence at any thread count).
        let candidates = parallel::map_range_min(n, n * d, PAR_MIN_SWEEP_ELEMS, invert_bin);
        dedupe_images(candidates.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_metrics::{match_greedy, PSNR_CAP};
    use oasis_nn::{softmax_cross_entropy, Layer, Linear, Mode};

    fn structured_images(count: usize, side: usize, seed: u64) -> Vec<Image> {
        let ds = oasis_data::cifar_like_with(count, 1, side, seed);
        ds.items().iter().map(|it| it.image.clone()).collect()
    }

    #[test]
    fn cutoffs_are_increasing_quantiles() {
        let attack = RtfAttack::new(100, 0.4, 0.1).unwrap();
        let cuts = attack.cutoffs();
        assert_eq!(cuts.len(), 100);
        for pair in cuts.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // Median cutoff near the mean.
        assert!((cuts[49] - 0.4).abs() < 0.01);
    }

    #[test]
    fn calibration_fits_sample_statistics() {
        let imgs = structured_images(40, 16, 3);
        let attack = RtfAttack::calibrated(64, &imgs).unwrap();
        let emp_mean = imgs.iter().map(Image::mean).sum::<f32>() / imgs.len() as f32;
        assert!((attack.measurement_mean - emp_mean).abs() < 1e-5);
        assert!(attack.measurement_std > 0.0);
    }

    #[test]
    fn calibration_requires_variance() {
        let imgs = vec![Image::new(1, 4, 4), Image::new(1, 4, 4)];
        assert!(RtfAttack::calibrated(8, &imgs).is_err());
    }

    #[test]
    fn undefended_small_batch_is_perfectly_reconstructed() {
        // End-to-end: RTF against an undefended batch of 4 structured
        // images with plenty of bins must reconstruct every sample at
        // (numerically) perfect PSNR — the paper's WO baseline.
        let imgs = structured_images(64, 12, 7);
        let attack = RtfAttack::calibrated(256, &imgs).unwrap();
        let batch: Vec<Image> = imgs[..4].to_vec();
        let geometry = batch[0].dims();
        let mut model = attack.build_model(geometry, 10, 0).unwrap();

        let d = geometry.0 * geometry.1 * geometry.2;
        let mut x = Tensor::zeros(&[4, d]);
        for (i, img) in batch.iter().enumerate() {
            x.row_mut(i).unwrap().copy_from_slice(img.data());
        }
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        model.backward(&out.grad).unwrap();

        let lin = model.layer_as::<Linear>(0).unwrap();
        let recons = attack.reconstruct(lin.grad_weight(), lin.grad_bias(), geometry);
        assert!(!recons.is_empty());
        let matches = match_greedy(&recons, &batch);
        assert_eq!(matches.len(), 4);
        for m in &matches {
            assert!(
                m.psnr > 100.0,
                "sample {} reconstructed at only {:.1} dB",
                m.original_idx,
                m.psnr
            );
        }
        assert!(matches.iter().any(|m| m.psnr >= PSNR_CAP - 30.0));
    }

    #[test]
    fn new_rejects_degenerate_configs() {
        assert!(RtfAttack::new(1, 0.5, 0.1).is_err());
        assert!(RtfAttack::new(10, 0.5, 0.0).is_err());
    }
}
