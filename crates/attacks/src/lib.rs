//! # oasis-attacks
//!
//! The adversary side of the OASIS evaluation: the two state-of-the-art
//! **active reconstruction attacks** the paper defends against, the
//! linear-model gradient inversion, the gradient-inversion primitive
//! they share (paper Eq. 6), baseline defenses (ATSPrivacy-style
//! transform replacement, DP-SGD noise), and the evaluation harness
//! that scores reconstructions with PSNR matching.
//!
//! ## Attacks
//!
//! * [`RtfAttack`] — *Robbing the Fed* (Fowl et al., ICLR '22): an
//!   imprint module whose rows measure mean pixel intensity and whose
//!   biases sit at CDF quantiles; adjacent-bin gradient differences
//!   isolate single samples.
//! * [`CahAttack`] — *Curious Abandon Honesty* (Boenisch et al.,
//!   EuroS&P '23): trap weights with a calibrated activation
//!   probability; neurons activated by exactly one sample invert
//!   perfectly.
//! * [`QbiAttack`] — *Quantile-based bias initialization* (Krauß et
//!   al., 2024): plain Gaussian rows with biases at the `1 − 1/B`
//!   response quantile; no optimization loop, cheap to re-tune
//!   between rounds.
//! * [`LinearModelAttack`] — gradient inversion on a single-layer
//!   softmax model with unique labels (paper §IV-D).
//!
//! All three reduce to the same primitive: if a neuron's
//! `(∂L/∂W_i, ∂L/∂b_i)` is dominated by one sample, then
//! `∂L/∂W_i ÷ ∂L/∂b_i` *is* that sample (Eq. 6) — see [`invert_neuron`].

#![warn(missing_docs)]

mod ats;
mod cah;
mod dpsgd;
mod error;
mod evaluate;
mod gaussian;
mod inversion;
mod linear;
mod malicious;
mod qbi;
mod rtf;

pub use ats::AtsDefense;
pub use cah::{CahAttack, DEFAULT_ACTIVATION_TARGET};
pub use dpsgd::{train_linear_with_dp, DpConfig};
pub use error::AttackError;
pub use evaluate::{run_attack, run_attack_over_wire, ActiveAttack, AttackOutcome, WireTrace};
pub use gaussian::{normal_cdf, probit};
pub use inversion::{dedupe_images, invert_neuron, invert_neuron_difference};
pub use linear::LinearModelAttack;
pub use malicious::attacked_model;
pub use qbi::{QbiAttack, DEFAULT_QBI_BATCH};
pub use rtf::RtfAttack;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, AttackError>;
