//! Shared construction of the attacked model.

use oasis_nn::{Linear, Relu, Sequential};
use oasis_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Result;

/// Assembles the network a dishonest server dispatches:
///
/// ```text
/// [ malicious Linear (n×d) ] → ReLU → [ equalized head (k×n) ]
/// ```
///
/// The head's weight matrix has **identical columns** (`W2[c][i] =
/// v[c]` for every attacked neuron `i`). Consequence: during backward,
/// every sample `j` sends the *same* signal `g_j = Σ_c δ_jc·v_c` to
/// every attacked neuron it activates. That equality is what makes the
/// RTF bin-difference extraction exact, and it is a choice the
/// *server* makes — the client cannot see it without weight
/// inspection (paper §III-A: modifications "should be minimal to
/// avoid detection").
///
/// # Errors
///
/// Propagates shape errors from layer construction.
pub fn attacked_model(
    malicious_weight: Tensor,
    malicious_bias: Tensor,
    classes: usize,
    head_seed: u64,
) -> Result<Sequential> {
    let neurons = malicious_weight.dims()[0];
    let malicious = Linear::from_parts(malicious_weight, malicious_bias)?;
    let mut rng = StdRng::seed_from_u64(head_seed);
    // Per-class coefficients, kept small so softmax stays unsaturated
    // and every sample keeps a nonzero loss signal.
    let v = Tensor::rand_uniform(&[classes], -0.05, 0.05, &mut rng);
    let mut head_w = Tensor::zeros(&[classes, neurons]);
    for c in 0..classes {
        let vc = v.data()[c];
        for i in 0..neurons {
            head_w.data_mut()[c * neurons + i] = vc;
        }
    }
    let head = Linear::from_parts(head_w, Tensor::zeros(&[classes]))?;
    let mut model = Sequential::new();
    model.push(malicious);
    model.push(Relu::new());
    model.push(head);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis_nn::{softmax_cross_entropy, Layer, Mode};

    #[test]
    fn model_has_three_layers() {
        let w = Tensor::zeros(&[4, 6]);
        let b = Tensor::zeros(&[4]);
        let model = attacked_model(w, b, 3, 0).unwrap();
        assert_eq!(model.len(), 3);
        assert!(model.layer_as::<Linear>(0).is_some());
        assert!(model.layer_as::<Relu>(1).is_some());
        assert!(model.layer_as::<Linear>(2).is_some());
    }

    #[test]
    fn head_columns_are_identical() {
        let w = Tensor::zeros(&[5, 2]);
        let b = Tensor::zeros(&[5]);
        let model = attacked_model(w, b, 4, 1).unwrap();
        let head = model.layer_as::<Linear>(2).unwrap();
        for c in 0..4 {
            let row = head.weight().row(c).unwrap();
            for &x in row {
                assert_eq!(x, row[0], "head row {c} is not constant");
            }
        }
    }

    #[test]
    fn per_sample_signal_equal_across_active_neurons() {
        // The property the equalized head guarantees: for a single
        // sample, ∂L/∂b_i is identical for every activated neuron i.
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::randn(&[6, 4], &mut rng).map(|v| v.abs() + 0.1); // all-positive: every neuron activates
        let b = Tensor::zeros(&[6]);
        let mut model = attacked_model(w, b, 3, 2).unwrap();
        let x = Tensor::rand_uniform(&[1, 4], 0.1, 1.0, &mut rng);
        model.zero_grad();
        let logits = model.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&logits, &[1]).unwrap();
        model.backward(&out.grad).unwrap();
        let lin = model.layer_as::<Linear>(0).unwrap();
        let gb = lin.grad_bias().data();
        for &g in gb {
            assert!(
                (g - gb[0]).abs() < 1e-9,
                "bias gradients differ across neurons: {gb:?}"
            );
        }
        assert!(gb[0].abs() > 0.0, "signal must be nonzero");
    }
}
