//! The gradient-inversion primitive (paper Eq. 6) and reconstruction
//! pool hygiene.

use oasis_image::Image;

/// Minimum total gradient elements (`neurons · d`) before a
/// per-neuron inversion sweep fans out across the worker pool. Each
/// neuron's inversion is only a `d`-long divide, so small sweeps
/// would pay more in dispatch latency than they save.
pub(crate) const PAR_MIN_SWEEP_ELEMS: usize = 64 * 1024;

/// Minimum `|∂L/∂b_i|` for a neuron to be considered informative.
pub const BIAS_GRAD_EPS: f32 = 1e-9;

/// Paper Eq. 6: `(∂L/∂b_i)⁻¹ · ∂L/∂W_i = x̂`.
///
/// If neuron `i` was activated by exactly one sample `x_t`, the result
/// is exactly `x_t`; if several samples activated it, the result is
/// the loss-weighted linear combination the paper's defense aims to
/// force. Returns `None` when the bias gradient is (numerically) zero
/// — the neuron saw no samples.
pub fn invert_neuron(grad_w_row: &[f32], grad_b: f32) -> Option<Vec<f32>> {
    if grad_b.abs() < BIAS_GRAD_EPS {
        return None;
    }
    Some(grad_w_row.iter().map(|&g| g / grad_b).collect())
}

/// The RTF bin extraction: inverts the *difference* of two adjacent
/// neurons' gradients, isolating samples whose measurement fell
/// strictly between the two bias cutoffs.
pub fn invert_neuron_difference(
    grad_w_hi: &[f32],
    grad_b_hi: f32,
    grad_w_lo: &[f32],
    grad_b_lo: f32,
) -> Option<Vec<f32>> {
    let db = grad_b_hi - grad_b_lo;
    if db.abs() < BIAS_GRAD_EPS {
        return None;
    }
    Some(
        grad_w_hi
            .iter()
            .zip(grad_w_lo)
            .map(|(&a, &b)| (a - b) / db)
            .collect(),
    )
}

/// PSNR above which two reconstructions are considered the same image.
const DUPLICATE_PSNR: f64 = 45.0;

/// Whether `b` duplicates `a`: squared error below the
/// [`DUPLICATE_PSNR`] threshold (peak value 1.0).
///
/// Equivalent to `psnr_data(a, b) > DUPLICATE_PSNR` but allocation-free
/// and short-circuiting: the squared-error sum is monotone, so the
/// comparison aborts as soon as it provably exceeds the duplicate
/// bound — for a non-duplicate pair only a prefix of the pixels is
/// ever read. Terms accumulate in the same left-to-right order as the
/// full PSNR computation, so no pair classifies differently.
fn is_duplicate(a: &[f32], b: &[f32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    // psnr > t  ⟺  mse < 10^(−t/10)  (with the saturated "perfect"
    // band below the MSE floor landing on the duplicate side too).
    let limit = 10f64.powf(-DUPLICATE_PSNR / 10.0) * a.len() as f64;
    let mut sum = 0.0f64;
    for (ca, cb) in a.chunks(256).zip(b.chunks(256)) {
        for (&x, &y) in ca.iter().zip(cb) {
            let d = x as f64 - y as f64;
            sum += d * d;
        }
        if sum >= limit {
            return false;
        }
    }
    sum < limit
}

/// Removes near-duplicate reconstructions (many trap neurons catch the
/// same singleton) and obviously degenerate outputs (≈ all-zero).
///
/// One pass over the pool, near-linear: bucketing by quantized mean
/// means duplicates (which have almost identical means) are the only
/// candidates compared pixel-wise, and the comparison itself
/// short-circuits (`is_duplicate`) as soon as a candidate is
/// provably distinct.
pub fn dedupe_images(pool: Vec<Image>) -> Vec<Image> {
    use std::collections::HashMap;
    let mut kept: Vec<Image> = Vec::new();
    let mut buckets: HashMap<i64, Vec<usize>> = HashMap::new();
    'outer: for img in pool {
        let norm_sq: f32 = img.data().iter().map(|v| v * v).sum();
        if !norm_sq.is_finite() || norm_sq < 1e-8 {
            continue; // degenerate
        }
        let key = (img.mean() as f64 * 1e4).round() as i64;
        // Duplicates can straddle a bucket boundary; check neighbors.
        for k in [key - 1, key, key + 1] {
            if let Some(indices) = buckets.get(&k) {
                for &i in indices {
                    if kept[i].dims() == img.dims() && is_duplicate(kept[i].data(), img.data()) {
                        continue 'outer;
                    }
                }
            }
        }
        buckets.entry(key).or_default().push(kept.len());
        kept.push(img);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_inversion_is_exact() {
        // Simulate: one sample x with backprop signal g.
        let x = [0.2f32, 0.7, 0.4];
        let g = -1.7f32;
        let grad_w: Vec<f32> = x.iter().map(|&v| g * v).collect();
        let rec = invert_neuron(&grad_w, g).unwrap();
        for (a, b) in rec.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_bias_gradient_yields_none() {
        assert!(invert_neuron(&[1.0, 2.0], 0.0).is_none());
    }

    #[test]
    fn two_sample_inversion_is_convex_combination() {
        // Two samples activating the same neuron produce the weighted
        // average — the paper's "linear combination".
        let x1 = [1.0f32, 0.0];
        let x2 = [0.0f32, 1.0];
        let (g1, g2) = (0.3f32, 0.7f32);
        let grad_w = [g1 * x1[0] + g2 * x2[0], g1 * x1[1] + g2 * x2[1]];
        let rec = invert_neuron(&grad_w, g1 + g2).unwrap();
        assert!((rec[0] - 0.3).abs() < 1e-6);
        assert!((rec[1] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn difference_extraction_isolates_bin() {
        // Neuron hi is activated by {x1, x2}; neuron lo by {x2} only.
        // The difference isolates x1 (the RTF mechanism).
        let x1 = [0.9f32, 0.1];
        let x2 = [0.2f32, 0.8];
        let (g1, g2) = (0.5f32, -1.2f32);
        let gw_hi = [g1 * x1[0] + g2 * x2[0], g1 * x1[1] + g2 * x2[1]];
        let gb_hi = g1 + g2;
        let gw_lo = [g2 * x2[0], g2 * x2[1]];
        let gb_lo = g2;
        let rec = invert_neuron_difference(&gw_hi, gb_hi, &gw_lo, gb_lo).unwrap();
        for (a, b) in rec.iter().zip(&x1) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn identical_gradients_yield_none() {
        let gw = [0.5f32, 0.5];
        assert!(invert_neuron_difference(&gw, 1.0, &gw, 1.0).is_none());
    }

    fn img(vals: &[f32]) -> Image {
        Image::from_vec(1, 1, vals.len(), vals.to_vec()).unwrap()
    }

    #[test]
    fn dedupe_removes_exact_duplicates() {
        let pool = vec![img(&[0.5, 0.6]), img(&[0.5, 0.6]), img(&[0.9, 0.1])];
        let kept = dedupe_images(pool);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn dedupe_drops_degenerate_zero_images() {
        let pool = vec![img(&[0.0, 0.0]), img(&[0.4, 0.4])];
        let kept = dedupe_images(pool);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn dedupe_keeps_distinct_images() {
        let pool = vec![img(&[0.1, 0.9]), img(&[0.9, 0.1]), img(&[0.5, 0.5])];
        assert_eq!(dedupe_images(pool).len(), 3);
    }

    #[test]
    fn dedupe_drops_nonfinite() {
        let pool = vec![img(&[f32::NAN, 0.3]), img(&[0.4, 0.4])];
        assert_eq!(dedupe_images(pool).len(), 1);
    }

    #[test]
    fn dedupe_empty_pool_is_noop() {
        assert!(dedupe_images(Vec::new()).is_empty());
    }

    #[test]
    fn duplicate_check_matches_full_psnr_comparison() {
        // The short-circuiting comparison must agree with the full
        // PSNR computation on exact duplicates, f32-noise duplicates,
        // borderline pairs, and clearly distinct images.
        let base: Vec<f32> = (0..768).map(|i| (i as f32 * 0.013).fract()).collect();
        let noisy: Vec<f32> = base.iter().map(|&v| v + 1e-6).collect();
        let distinct: Vec<f32> = base.iter().map(|&v| 1.0 - v).collect();
        // ~40 dB of uniform offset: below the 45 dB duplicate bar.
        let offset: Vec<f32> = base.iter().map(|&v| v + 0.01).collect();
        for (a, b) in [
            (&base, &base),
            (&base, &noisy),
            (&base, &distinct),
            (&base, &offset),
        ] {
            assert_eq!(
                is_duplicate(a, b),
                oasis_metrics::psnr_data(a, b) > DUPLICATE_PSNR,
                "divergence from psnr_data"
            );
        }
    }

    #[test]
    fn heavy_duplicate_pool_dedupes_in_one_pass() {
        // 500 reconstructions, only 10 distinct underlying samples —
        // the shape of a wide imprint layer catching few singletons.
        // Duplicates carry f32-level noise (well above 45 dB against
        // their original), and a sprinkle of degenerate zeros rides
        // along.
        let d = 48;
        let sample = |s: usize| -> Vec<f32> {
            (0..d)
                .map(|i| ((i * 31 + s * 97) % 100) as f32 / 100.0)
                .collect()
        };
        let mut pool = Vec::new();
        for rep in 0..50 {
            for s in 0..10 {
                let mut v = sample(s);
                if rep % 7 == 3 {
                    v.iter_mut().for_each(|x| *x = 0.0); // degenerate
                } else {
                    let eps = rep as f32 * 1e-7;
                    v.iter_mut().for_each(|x| *x += eps);
                }
                pool.push(img(&v));
            }
        }
        assert_eq!(pool.len(), 500);
        let kept = dedupe_images(pool);
        assert_eq!(kept.len(), 10, "one survivor per distinct sample");
    }
}
