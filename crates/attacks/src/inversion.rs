//! The gradient-inversion primitive (paper Eq. 6) and reconstruction
//! pool hygiene.

use oasis_image::Image;
use oasis_metrics::psnr_data;

/// Minimum `|∂L/∂b_i|` for a neuron to be considered informative.
pub const BIAS_GRAD_EPS: f32 = 1e-9;

/// Paper Eq. 6: `(∂L/∂b_i)⁻¹ · ∂L/∂W_i = x̂`.
///
/// If neuron `i` was activated by exactly one sample `x_t`, the result
/// is exactly `x_t`; if several samples activated it, the result is
/// the loss-weighted linear combination the paper's defense aims to
/// force. Returns `None` when the bias gradient is (numerically) zero
/// — the neuron saw no samples.
pub fn invert_neuron(grad_w_row: &[f32], grad_b: f32) -> Option<Vec<f32>> {
    if grad_b.abs() < BIAS_GRAD_EPS {
        return None;
    }
    Some(grad_w_row.iter().map(|&g| g / grad_b).collect())
}

/// The RTF bin extraction: inverts the *difference* of two adjacent
/// neurons' gradients, isolating samples whose measurement fell
/// strictly between the two bias cutoffs.
pub fn invert_neuron_difference(
    grad_w_hi: &[f32],
    grad_b_hi: f32,
    grad_w_lo: &[f32],
    grad_b_lo: f32,
) -> Option<Vec<f32>> {
    let db = grad_b_hi - grad_b_lo;
    if db.abs() < BIAS_GRAD_EPS {
        return None;
    }
    Some(
        grad_w_hi
            .iter()
            .zip(grad_w_lo)
            .map(|(&a, &b)| (a - b) / db)
            .collect(),
    )
}

/// PSNR above which two reconstructions are considered the same image.
const DUPLICATE_PSNR: f64 = 45.0;

/// Removes near-duplicate reconstructions (many trap neurons catch the
/// same singleton) and obviously degenerate outputs (≈ all-zero).
///
/// Bucketing by quantized mean keeps this near-linear: duplicates have
/// (almost) identical means, so only same-bucket candidates are
/// compared with PSNR.
pub fn dedupe_images(pool: Vec<Image>) -> Vec<Image> {
    use std::collections::HashMap;
    let mut kept: Vec<Image> = Vec::new();
    let mut buckets: HashMap<i64, Vec<usize>> = HashMap::new();
    'outer: for img in pool {
        let norm_sq: f32 = img.data().iter().map(|v| v * v).sum();
        if !norm_sq.is_finite() || norm_sq < 1e-8 {
            continue; // degenerate
        }
        let key = (img.mean() as f64 * 1e4).round() as i64;
        // Duplicates can straddle a bucket boundary; check neighbors.
        for k in [key - 1, key, key + 1] {
            if let Some(indices) = buckets.get(&k) {
                for &i in indices {
                    if kept[i].dims() == img.dims()
                        && psnr_data(kept[i].data(), img.data()) > DUPLICATE_PSNR
                    {
                        continue 'outer;
                    }
                }
            }
        }
        buckets.entry(key).or_default().push(kept.len());
        kept.push(img);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_inversion_is_exact() {
        // Simulate: one sample x with backprop signal g.
        let x = [0.2f32, 0.7, 0.4];
        let g = -1.7f32;
        let grad_w: Vec<f32> = x.iter().map(|&v| g * v).collect();
        let rec = invert_neuron(&grad_w, g).unwrap();
        for (a, b) in rec.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_bias_gradient_yields_none() {
        assert!(invert_neuron(&[1.0, 2.0], 0.0).is_none());
    }

    #[test]
    fn two_sample_inversion_is_convex_combination() {
        // Two samples activating the same neuron produce the weighted
        // average — the paper's "linear combination".
        let x1 = [1.0f32, 0.0];
        let x2 = [0.0f32, 1.0];
        let (g1, g2) = (0.3f32, 0.7f32);
        let grad_w = [g1 * x1[0] + g2 * x2[0], g1 * x1[1] + g2 * x2[1]];
        let rec = invert_neuron(&grad_w, g1 + g2).unwrap();
        assert!((rec[0] - 0.3).abs() < 1e-6);
        assert!((rec[1] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn difference_extraction_isolates_bin() {
        // Neuron hi is activated by {x1, x2}; neuron lo by {x2} only.
        // The difference isolates x1 (the RTF mechanism).
        let x1 = [0.9f32, 0.1];
        let x2 = [0.2f32, 0.8];
        let (g1, g2) = (0.5f32, -1.2f32);
        let gw_hi = [g1 * x1[0] + g2 * x2[0], g1 * x1[1] + g2 * x2[1]];
        let gb_hi = g1 + g2;
        let gw_lo = [g2 * x2[0], g2 * x2[1]];
        let gb_lo = g2;
        let rec = invert_neuron_difference(&gw_hi, gb_hi, &gw_lo, gb_lo).unwrap();
        for (a, b) in rec.iter().zip(&x1) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn identical_gradients_yield_none() {
        let gw = [0.5f32, 0.5];
        assert!(invert_neuron_difference(&gw, 1.0, &gw, 1.0).is_none());
    }

    fn img(vals: &[f32]) -> Image {
        Image::from_vec(1, 1, vals.len(), vals.to_vec()).unwrap()
    }

    #[test]
    fn dedupe_removes_exact_duplicates() {
        let pool = vec![img(&[0.5, 0.6]), img(&[0.5, 0.6]), img(&[0.9, 0.1])];
        let kept = dedupe_images(pool);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn dedupe_drops_degenerate_zero_images() {
        let pool = vec![img(&[0.0, 0.0]), img(&[0.4, 0.4])];
        let kept = dedupe_images(pool);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn dedupe_keeps_distinct_images() {
        let pool = vec![img(&[0.1, 0.9]), img(&[0.9, 0.1]), img(&[0.5, 0.5])];
        assert_eq!(dedupe_images(pool).len(), 3);
    }

    #[test]
    fn dedupe_drops_nonfinite() {
        let pool = vec![img(&[f32::NAN, 0.3]), img(&[0.4, 0.4])];
        assert_eq!(dedupe_images(pool).len(), 1);
    }
}
