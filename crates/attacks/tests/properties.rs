//! Property tests for the attack algebra — the invariants behind
//! paper Eq. 6 and the RTF/CAH constructions.

use oasis_attacks::{invert_neuron, invert_neuron_difference, probit, RtfAttack};
use proptest::prelude::*;

proptest! {
    /// Eq. 6 inverts exactly for any single sample and any nonzero
    /// signal: (g·x, g) ↦ x.
    #[test]
    fn single_sample_inversion_is_exact(
        x in proptest::collection::vec(0.0f32..1.0, 4..32),
        g in prop_oneof![-5.0f32..-0.01, 0.01f32..5.0],
    ) {
        let grad_w: Vec<f32> = x.iter().map(|&v| g * v).collect();
        let rec = invert_neuron(&grad_w, g).expect("nonzero signal");
        for (a, b) in rec.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// A two-sample neuron yields the loss-weighted convex combination
    /// — never either original exactly (for distinct samples and
    /// same-sign weights).
    #[test]
    fn mixture_inversion_is_convex_combination(
        n in 4usize..16,
        g1 in 0.01f32..2.0,
        g2 in 0.01f32..2.0,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let x1: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let x2: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let grad_w: Vec<f32> = x1.iter().zip(&x2).map(|(&a, &b)| g1 * a + g2 * b).collect();
        let rec = invert_neuron(&grad_w, g1 + g2).expect("nonzero signal");
        let (w1, w2) = (g1 / (g1 + g2), g2 / (g1 + g2));
        for ((r, &a), &b) in rec.iter().zip(&x1).zip(&x2) {
            let expect = w1 * a + w2 * b;
            prop_assert!((r - expect).abs() < 1e-3, "{r} vs {expect}");
        }
    }

    /// The RTF bin-difference extraction recovers the isolated sample
    /// for any signals and any second-bin contents.
    #[test]
    fn bin_difference_isolates_sample(
        n in 4usize..16,
        g_t in prop_oneof![-2.0f32..-0.05, 0.05f32..2.0],
        g_other in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng, Rng};
        let mut rng = StdRng::seed_from_u64(seed);
        let xt: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let xo: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        // Neuron hi: activated by {xt, xo}; neuron lo: {xo} only.
        let gw_hi: Vec<f32> = xt.iter().zip(&xo).map(|(&a, &b)| g_t * a + g_other * b).collect();
        let gw_lo: Vec<f32> = xo.iter().map(|&b| g_other * b).collect();
        let rec = invert_neuron_difference(&gw_hi, g_t + g_other, &gw_lo, g_other)
            .expect("nonzero difference");
        for (r, &a) in rec.iter().zip(&xt) {
            prop_assert!((r - a).abs() < 2e-3, "{r} vs {a}");
        }
    }

    /// The probit function is the inverse CDF: monotone, symmetric,
    /// and consistent with the CDF implementation.
    #[test]
    fn probit_is_monotone_and_symmetric(p in 0.001f64..0.999) {
        let q = probit(p);
        prop_assert!((probit(1.0 - p) + q).abs() < 1e-6);
        prop_assert!((oasis_attacks::normal_cdf(q) - p).abs() < 5e-4);
    }

    /// RTF cutoffs are strictly increasing for any Gaussian fit.
    #[test]
    fn rtf_cutoffs_strictly_increase(
        neurons in 2usize..256,
        mean in -1.0f32..1.0,
        std in 0.01f32..2.0,
    ) {
        let attack = RtfAttack::new(neurons, mean, std).expect("valid config");
        let cuts = attack.cutoffs();
        prop_assert_eq!(cuts.len(), neurons);
        for pair in cuts.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }
}
