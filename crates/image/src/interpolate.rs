//! Affine warps with bilinear interpolation.
//!
//! Geometric transforms (rotation by arbitrary angles, shear) are
//! implemented by *inverse mapping*: for every output pixel we apply
//! the inverse affine map to find the source location and sample the
//! input bilinearly, using zero padding outside the frame — the same
//! convention as `torchvision.transforms.functional.affine` with
//! `fill=0`, which the paper uses.

use crate::Image;

/// A 2×3 affine map `(y, x) ↦ (a·y + b·x + ty, c·y + d·x + tx)` acting
/// on image coordinates relative to the image center.
///
/// The map is applied as the **inverse** transform during warping, so
/// to rotate an image *by* θ you construct the rotation by −θ … or
/// simply use [`AffineMap::rotation`], which already accounts for
/// this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineMap {
    /// Row-major 2×2 linear part.
    pub linear: [[f32; 2]; 2],
    /// Translation `(dy, dx)` applied after the linear part.
    pub translation: [f32; 2],
}

impl AffineMap {
    /// The identity map.
    pub fn identity() -> Self {
        AffineMap {
            linear: [[1.0, 0.0], [0.0, 1.0]],
            translation: [0.0, 0.0],
        }
    }

    /// Inverse map for a rotation *of the image* by `degrees`
    /// counter-clockwise (paper Eq. 2).
    pub fn rotation(degrees: f32) -> Self {
        // Inverse of rotation by θ is rotation by −θ; build it directly.
        let theta = degrees.to_radians();
        let (sin, cos) = (theta.sin(), theta.cos());
        // Coordinates are (y, x); a CCW rotation in (x, y) maps to this
        // form in (y, x).
        AffineMap {
            linear: [[cos, -sin], [sin, cos]],
            translation: [0.0, 0.0],
        }
    }

    /// Inverse map for a horizontal shear with factor `mu`
    /// (paper Eq. 5: `I'(i, j) = I(i + µj, j)`).
    pub fn shear_x(mu: f32) -> Self {
        AffineMap {
            linear: [[1.0, 0.0], [mu, 1.0]],
            translation: [0.0, 0.0],
        }
    }

    /// Inverse map for a vertical shear with factor `mu`.
    pub fn shear_y(mu: f32) -> Self {
        AffineMap {
            linear: [[1.0, mu], [0.0, 1.0]],
            translation: [0.0, 0.0],
        }
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        let a = &self.linear;
        let b = &other.linear;
        let linear = [
            [
                a[0][0] * b[0][0] + a[0][1] * b[1][0],
                a[0][0] * b[0][1] + a[0][1] * b[1][1],
            ],
            [
                a[1][0] * b[0][0] + a[1][1] * b[1][0],
                a[1][0] * b[0][1] + a[1][1] * b[1][1],
            ],
        ];
        let translation = [
            a[0][0] * other.translation[0] + a[0][1] * other.translation[1] + self.translation[0],
            a[1][0] * other.translation[0] + a[1][1] * other.translation[1] + self.translation[1],
        ];
        AffineMap {
            linear,
            translation,
        }
    }

    /// Applies the map to center-relative coordinates `(y, x)`.
    pub fn apply(&self, y: f32, x: f32) -> (f32, f32) {
        (
            self.linear[0][0] * y + self.linear[0][1] * x + self.translation[0],
            self.linear[1][0] * y + self.linear[1][1] * x + self.translation[1],
        )
    }
}

/// How out-of-frame samples are filled during a warp.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize, Hash,
)]
pub enum FillMode {
    /// Out-of-frame samples read as 0 (black) — `torchvision`'s
    /// `fill=0` default.
    #[default]
    Zero,
    /// Out-of-frame coordinates are mirrored back into the frame —
    /// `padding_mode="reflection"`. Keeps the warped image's pixel
    /// statistics close to the source's, which matters for the OASIS
    /// defense: statistical drift makes augmented copies behave unlike
    /// calibration data under the attacker's trap neurons.
    Reflect,
}

/// Samples channel `c` of `img` at continuous position `(y, x)` with
/// bilinear interpolation and zero padding outside the frame.
pub fn bilinear_sample(img: &Image, c: usize, y: f32, x: f32) -> f32 {
    bilinear_sample_with(img, c, y, x, FillMode::Zero)
}

/// [`bilinear_sample`] with an explicit fill mode.
pub fn bilinear_sample_with(img: &Image, c: usize, y: f32, x: f32, fill: FillMode) -> f32 {
    let (y, x) = match fill {
        FillMode::Zero => (y, x),
        FillMode::Reflect => {
            let (_, h, w) = img.dims();
            (reflect_coord(y, h), reflect_coord(x, w))
        }
    };
    let y0 = y.floor();
    let x0 = x.floor();
    let dy = y - y0;
    let dx = x - x0;
    let (y0, x0) = (y0 as isize, x0 as isize);
    let v00 = img.get_or_zero(c, y0, x0);
    let v01 = img.get_or_zero(c, y0, x0 + 1);
    let v10 = img.get_or_zero(c, y0 + 1, x0);
    let v11 = img.get_or_zero(c, y0 + 1, x0 + 1);
    v00 * (1.0 - dy) * (1.0 - dx) + v01 * (1.0 - dy) * dx + v10 * dy * (1.0 - dx) + v11 * dy * dx
}

/// Mirrors a continuous coordinate into `[0, len-1]` (reflection
/// without edge repetition, period `2·(len−1)`).
fn reflect_coord(v: f32, len: usize) -> f32 {
    if len <= 1 {
        return 0.0;
    }
    let max = (len - 1) as f32;
    let period = 2.0 * max;
    let mut m = v.rem_euclid(period);
    if m > max {
        m = period - m;
    }
    m
}

impl Image {
    /// Warps the image through `map` (interpreted as the inverse
    /// transform around the image center) with bilinear sampling and
    /// zero fill.
    pub fn warp_affine(&self, map: &AffineMap) -> Image {
        self.warp_affine_with(map, FillMode::Zero)
    }

    /// [`Image::warp_affine`] with an explicit out-of-frame fill mode.
    pub fn warp_affine_with(&self, map: &AffineMap, fill: FillMode) -> Image {
        let (c, h, w) = self.dims();
        let cy = (h as f32 - 1.0) / 2.0;
        let cx = (w as f32 - 1.0) / 2.0;
        let mut out = Image::new(c, h, w);
        for ch in 0..c {
            for oy in 0..h {
                for ox in 0..w {
                    let (sy, sx) = map.apply(oy as f32 - cy, ox as f32 - cx);
                    let v = bilinear_sample_with(self, ch, sy + cy, sx + cx, fill);
                    out.set(ch, oy, ox, v).expect("in-bounds by construction");
                }
            }
        }
        out
    }

    /// Exact 90°·`quarter_turns` counter-clockwise rotation by pixel
    /// permutation.
    ///
    /// Unlike [`Image::warp_affine`], this introduces **no**
    /// interpolation and therefore preserves the pixel-mean measurement
    /// *exactly* — the property that makes major rotation the strongest
    /// transform against the RTF attack (paper §IV-B).
    pub fn rotate90(&self, quarter_turns: u8) -> Image {
        let (c, h, w) = self.dims();
        match quarter_turns % 4 {
            0 => self.clone(),
            1 => {
                // (y, x) -> (h-1-x, y) destination; equivalently
                // out[y][x] = in[x][w-1-y] for square; general:
                let mut out = Image::new(c, w, h);
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let v = self.get(ch, y, x).expect("in bounds");
                            out.set(ch, w - 1 - x, y, v).expect("in bounds");
                        }
                    }
                }
                out
            }
            2 => {
                let mut out = Image::new(c, h, w);
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let v = self.get(ch, y, x).expect("in bounds");
                            out.set(ch, h - 1 - y, w - 1 - x, v).expect("in bounds");
                        }
                    }
                }
                out
            }
            3 => self.rotate90(1).rotate90(1).rotate90(1),
            _ => unreachable!(),
        }
    }

    /// Horizontal flip (reflection across the vertical axis,
    /// paper Eq. 3). Exact pixel permutation.
    pub fn flip_horizontal(&self) -> Image {
        let (c, h, w) = self.dims();
        let mut out = Image::new(c, h, w);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let v = self.get(ch, y, x).expect("in bounds");
                    out.set(ch, y, w - 1 - x, v).expect("in bounds");
                }
            }
        }
        out
    }

    /// Vertical flip (reflection across the horizontal axis,
    /// paper Eq. 4). Exact pixel permutation.
    pub fn flip_vertical(&self) -> Image {
        let (c, h, w) = self.dims();
        let mut out = Image::new(c, h, w);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let v = self.get(ch, y, x).expect("in bounds");
                    out.set(ch, h - 1 - y, x, v).expect("in bounds");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image() -> Image {
        let mut img = Image::new(1, 8, 8);
        for y in 0..8 {
            for x in 0..8 {
                img.set(0, y, x, (y * 8 + x) as f32 / 64.0).unwrap();
            }
        }
        img
    }

    #[test]
    fn identity_warp_is_identity() {
        let img = gradient_image();
        let out = img.warp_affine(&AffineMap::identity());
        for (a, b) in img.data().iter().zip(out.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotate90_preserves_mean_exactly() {
        let img = gradient_image();
        for q in 0..4 {
            assert_eq!(img.rotate90(q).mean(), img.mean(), "quarter turn {q}");
        }
    }

    #[test]
    fn rotate90_four_times_is_identity() {
        let img = gradient_image();
        let r = img.rotate90(1).rotate90(1).rotate90(1).rotate90(1);
        assert_eq!(r, img);
    }

    #[test]
    fn rotate90_twice_equals_rotate180() {
        let img = gradient_image();
        assert_eq!(img.rotate90(1).rotate90(1), img.rotate90(2));
    }

    #[test]
    fn flips_preserve_mean_exactly() {
        let img = gradient_image();
        assert_eq!(img.flip_horizontal().mean(), img.mean());
        assert_eq!(img.flip_vertical().mean(), img.mean());
    }

    #[test]
    fn flips_are_involutions() {
        let img = gradient_image();
        assert_eq!(img.flip_horizontal().flip_horizontal(), img);
        assert_eq!(img.flip_vertical().flip_vertical(), img);
    }

    #[test]
    fn hflip_moves_left_pixel_right() {
        let mut img = Image::new(1, 1, 3);
        img.set(0, 0, 0, 1.0).unwrap();
        let f = img.flip_horizontal();
        assert_eq!(f.get(0, 0, 2).unwrap(), 1.0);
        assert_eq!(f.get(0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn warp_rotation_180_close_to_exact() {
        let img = gradient_image();
        let warped = img.warp_affine(&AffineMap::rotation(180.0));
        let exact = img.rotate90(2);
        for (a, b) in warped.data().iter().zip(exact.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn shear_zero_is_identity() {
        let img = gradient_image();
        let out = img.warp_affine(&AffineMap::shear_x(0.0));
        for (a, b) in img.data().iter().zip(out.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn shear_moves_mass() {
        let img = gradient_image();
        let out = img.warp_affine(&AffineMap::shear_x(1.0));
        assert_ne!(out, img);
    }

    #[test]
    fn bilinear_at_integer_coords_is_exact() {
        let img = gradient_image();
        assert_eq!(
            bilinear_sample(&img, 0, 3.0, 4.0),
            img.get(0, 3, 4).unwrap()
        );
    }

    #[test]
    fn bilinear_midpoint_averages() {
        let mut img = Image::new(1, 1, 2);
        img.set(0, 0, 0, 0.0).unwrap();
        img.set(0, 0, 1, 1.0).unwrap();
        let v = bilinear_sample(&img, 0, 0.0, 0.5);
        assert!((v - 0.5).abs() < 1e-6);
    }

    #[test]
    fn compose_identity_is_noop() {
        let r = AffineMap::rotation(33.0);
        let c = r.compose(&AffineMap::identity());
        assert_eq!(c, r);
    }

    #[test]
    fn reflect_coord_mirrors() {
        assert_eq!(reflect_coord(-1.0, 8), 1.0);
        assert_eq!(reflect_coord(7.0, 8), 7.0);
        assert_eq!(reflect_coord(8.0, 8), 6.0);
        assert_eq!(reflect_coord(0.0, 8), 0.0);
        assert_eq!(reflect_coord(-0.5, 8), 0.5);
    }

    #[test]
    fn reflect_fill_never_reads_zero_padding() {
        let mut img = Image::new(1, 6, 6);
        img.fill(0.8);
        let rot = img.warp_affine_with(&AffineMap::rotation(30.0), FillMode::Reflect);
        // Every sample comes from inside the uniform image.
        for &v in rot.data() {
            assert!((v - 0.8).abs() < 1e-5, "value {v}");
        }
    }

    #[test]
    fn zero_fill_darkens_rotated_corners() {
        let mut img = Image::new(1, 8, 8);
        img.fill(1.0);
        let rot = img.warp_affine_with(&AffineMap::rotation(45.0), FillMode::Zero);
        assert!(rot.mean() < 0.95);
    }

    #[test]
    fn identity_warp_with_reflect_is_identity() {
        let img = gradient_image();
        let out = img.warp_affine_with(&AffineMap::identity(), FillMode::Reflect);
        for (a, b) in img.data().iter().zip(out.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn minor_rotation_changes_mean_only_slightly_for_centered_content() {
        // Content concentrated centrally (dark border) — rotation only
        // moves dark corners out, so the measurement shifts little.
        let mut img = Image::new(1, 16, 16);
        for y in 4..12 {
            for x in 4..12 {
                img.set(0, y, x, 0.8).unwrap();
            }
        }
        let rot = img.warp_affine(&AffineMap::rotation(30.0));
        let delta = (rot.mean() - img.mean()).abs();
        assert!(delta < 0.02, "mean shift {delta}");
    }
}
