//! Binary PPM (P6) / PGM (P5) reading and writing.
//!
//! The visual-reconstruction figures (paper Figures 7–12 and 14) are
//! emitted as PPM files, which every image viewer and converter
//! understands without pulling in an image-codec dependency.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Image, ImageError, Result};

/// Writes a 3-channel image as binary PPM (P6) or a 1-channel image as
/// binary PGM (P5). Values are clamped to `[0, 1]` and quantized to 8
/// bits.
///
/// # Errors
///
/// Returns an error for unsupported channel counts or IO failures.
pub fn write_auto(path: impl AsRef<Path>, img: &Image) -> Result<()> {
    match img.channels() {
        1 => write_pgm(path, img),
        3 => write_ppm(path, img),
        c => Err(ImageError::ChannelMismatch {
            op: "write_auto",
            expected: 3,
            actual: c,
        }),
    }
}

/// Writes a 3-channel image as binary PPM (P6).
///
/// # Errors
///
/// Returns an error if the image is not 3-channel or on IO failure.
pub fn write_ppm(path: impl AsRef<Path>, img: &Image) -> Result<()> {
    if img.channels() != 3 {
        return Err(ImageError::ChannelMismatch {
            op: "write_ppm",
            expected: 3,
            actual: img.channels(),
        });
    }
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "P6")?;
    writeln!(w, "{} {}", img.width(), img.height())?;
    writeln!(w, "255")?;
    let mut buf = Vec::with_capacity(img.height() * img.width() * 3);
    for y in 0..img.height() {
        for x in 0..img.width() {
            for c in 0..3 {
                let v = img.get(c, y, x).expect("in bounds");
                buf.push(quantize(v));
            }
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Writes a 1-channel image as binary PGM (P5).
///
/// # Errors
///
/// Returns an error if the image is not 1-channel or on IO failure.
pub fn write_pgm(path: impl AsRef<Path>, img: &Image) -> Result<()> {
    if img.channels() != 1 {
        return Err(ImageError::ChannelMismatch {
            op: "write_pgm",
            expected: 1,
            actual: img.channels(),
        });
    }
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", img.width(), img.height())?;
    writeln!(w, "255")?;
    let mut buf = Vec::with_capacity(img.height() * img.width());
    for y in 0..img.height() {
        for x in 0..img.width() {
            buf.push(quantize(img.get(0, y, x).expect("in bounds")));
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a binary PPM (P6) or PGM (P5) file.
///
/// # Errors
///
/// Returns an error on IO failure or malformed headers.
pub fn read(path: impl AsRef<Path>) -> Result<Image> {
    let mut r = BufReader::new(File::open(path)?);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    parse(&bytes)
}

fn parse(bytes: &[u8]) -> Result<Image> {
    let mut pos = 0usize;
    let magic = next_token(bytes, &mut pos)?;
    let channels = match magic.as_str() {
        "P6" => 3,
        "P5" => 1,
        other => return Err(ImageError::Format(format!("magic {other:?}"))),
    };
    let width: usize = next_token(bytes, &mut pos)?
        .parse()
        .map_err(|_| ImageError::Format("bad width".into()))?;
    let height: usize = next_token(bytes, &mut pos)?
        .parse()
        .map_err(|_| ImageError::Format("bad height".into()))?;
    let maxval: usize = next_token(bytes, &mut pos)?
        .parse()
        .map_err(|_| ImageError::Format("bad maxval".into()))?;
    if maxval != 255 {
        return Err(ImageError::Format(format!("unsupported maxval {maxval}")));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    pos += 1;
    let expected = width * height * channels;
    let pixels = bytes
        .get(pos..pos + expected)
        .ok_or_else(|| ImageError::Format("truncated pixel data".into()))?;
    let mut img = Image::new(channels, height, width);
    for y in 0..height {
        for x in 0..width {
            for c in 0..channels {
                let b = pixels[(y * width + x) * channels + c];
                img.set(c, y, x, b as f32 / 255.0).expect("in bounds");
            }
        }
    }
    Ok(img)
}

fn next_token(bytes: &[u8], pos: &mut usize) -> Result<String> {
    // Skip whitespace and `#` comments.
    loop {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < bytes.len() && bytes[*pos] == b'#' {
            while *pos < bytes.len() && bytes[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    let start = *pos;
    while *pos < bytes.len() && !bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    if start == *pos {
        return Err(ImageError::Format("unexpected end of header".into()));
    }
    String::from_utf8(bytes[start..*pos].to_vec())
        .map_err(|_| ImageError::Format("non-utf8 header".into()))
}

fn quantize(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Lays out images side by side in a grid with `cols` columns and
/// 2-pixel light-grey padding — used for the figure panels.
///
/// # Errors
///
/// Returns an error if `images` is empty or shapes differ.
pub fn montage(images: &[Image], cols: usize) -> Result<Image> {
    let first = images
        .first()
        .ok_or_else(|| ImageError::Format("montage of zero images".into()))?;
    let (c, h, w) = first.dims();
    for img in images {
        if img.dims() != (c, h, w) {
            return Err(ImageError::DimensionMismatch {
                op: "montage",
                lhs: (c, h, w),
                rhs: img.dims(),
            });
        }
    }
    const PAD: usize = 2;
    let cols = cols.max(1);
    let rows = images.len().div_ceil(cols);
    let out_h = rows * h + (rows + 1) * PAD;
    let out_w = cols * w + (cols + 1) * PAD;
    let mut out = Image::new(c, out_h, out_w);
    out.fill(0.85);
    for (idx, img) in images.iter().enumerate() {
        let gy = idx / cols;
        let gx = idx % cols;
        let oy = PAD + gy * (h + PAD);
        let ox = PAD + gx * (w + PAD);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let v = img.get(ch, y, x).expect("in bounds");
                    out.set(ch, oy + y, ox + x, v.clamp(0.0, 1.0))
                        .expect("in bounds");
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oasis_image_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn ppm_round_trip() {
        let mut img = Image::new(3, 4, 5);
        for y in 0..4 {
            for x in 0..5 {
                for c in 0..3 {
                    img.set(c, y, x, ((y * 5 + x + c) % 7) as f32 / 7.0)
                        .unwrap();
                }
            }
        }
        let p = temp_path("rt.ppm");
        write_ppm(&p, &img).unwrap();
        let back = read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(back.dims(), img.dims());
        for (a, b) in img.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn pgm_round_trip() {
        let mut img = Image::new(1, 3, 3);
        img.fill(0.25);
        let p = temp_path("rt.pgm");
        write_pgm(&p, &img).unwrap();
        let back = read(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(back.dims(), (1, 3, 3));
        assert!((back.get(0, 1, 1).unwrap() - 0.25).abs() <= 1.0 / 255.0);
    }

    #[test]
    fn write_ppm_rejects_grayscale() {
        let img = Image::new(1, 2, 2);
        let p = temp_path("bad.ppm");
        assert!(write_ppm(&p, &img).is_err());
    }

    #[test]
    fn montage_dimensions() {
        let imgs = vec![Image::new(3, 8, 8); 5];
        let m = montage(&imgs, 3).unwrap();
        // 2 rows, 3 cols, pad 2: h = 2*8+3*2 = 22, w = 3*8+4*2 = 32.
        assert_eq!(m.dims(), (3, 22, 32));
    }

    #[test]
    fn montage_rejects_empty() {
        assert!(montage(&[], 2).is_err());
    }

    #[test]
    fn quantize_clamps() {
        assert_eq!(quantize(-1.0), 0);
        assert_eq!(quantize(2.0), 255);
        assert_eq!(quantize(0.5), 128);
    }
}
