//! # oasis-image
//!
//! Image container, bilinear interpolation, procedural drawing and
//! PPM/PGM IO for the OASIS reproduction.
//!
//! Images are dense `f32` buffers in **CHW** (channel, height, width)
//! order with values nominally in `[0, 1]`. The augmentation transforms
//! in `oasis-augment` and the synthetic datasets in `oasis-data` are
//! built on this crate.
//!
//! ```
//! use oasis_image::Image;
//!
//! let mut img = Image::new(3, 8, 8);
//! img.fill(0.5);
//! assert_eq!(img.mean(), 0.5);
//! ```

#![warn(missing_docs)]

mod draw;
mod error;
mod image;
mod interpolate;
pub mod io;

pub use draw::Color;
pub use error::ImageError;
pub use image::Image;
pub use interpolate::{bilinear_sample, bilinear_sample_with, AffineMap, FillMode};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ImageError>;
