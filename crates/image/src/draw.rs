//! Procedural drawing primitives.
//!
//! The synthetic datasets in `oasis-data` compose these primitives to
//! build structured, class-distinctive images (circles, bars, checker
//! patterns, gradients). Structure matters: PSNR-based reconstruction
//! quality is only meaningful when images have recognizable content.

use rand::Rng;

use crate::Image;

/// An RGB color with components in `[0, 1]`.
///
/// For single-channel images only the first component is used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Color(pub f32, pub f32, pub f32);

impl Color {
    /// Grey with the given intensity.
    pub fn grey(v: f32) -> Self {
        Color(v, v, v)
    }

    fn component(&self, c: usize) -> f32 {
        match c {
            0 => self.0,
            1 => self.1,
            _ => self.2,
        }
    }
}

impl Image {
    /// Fills the whole image with a color.
    pub fn fill_color(&mut self, color: Color) {
        let (c, h, w) = self.dims();
        for ch in 0..c {
            let v = color.component(ch);
            for y in 0..h {
                for x in 0..w {
                    self.set(ch, y, x, v).expect("in bounds");
                }
            }
        }
    }

    /// Fills the axis-aligned rectangle `[y0, y1) × [x0, x1)`, clipped
    /// to the frame.
    pub fn fill_rect(&mut self, y0: usize, x0: usize, y1: usize, x1: usize, color: Color) {
        let (c, h, w) = self.dims();
        for ch in 0..c {
            let v = color.component(ch);
            for y in y0..y1.min(h) {
                for x in x0..x1.min(w) {
                    self.set(ch, y, x, v).expect("in bounds");
                }
            }
        }
    }

    /// Fills a disc of radius `r` centered at `(cy, cx)`, clipped.
    pub fn fill_circle(&mut self, cy: f32, cx: f32, r: f32, color: Color) {
        let (c, h, w) = self.dims();
        let r2 = r * r;
        for ch in 0..c {
            let v = color.component(ch);
            for y in 0..h {
                for x in 0..w {
                    let dy = y as f32 - cy;
                    let dx = x as f32 - cx;
                    if dy * dy + dx * dx <= r2 {
                        self.set(ch, y, x, v).expect("in bounds");
                    }
                }
            }
        }
    }

    /// Draws a ring (annulus) of inner radius `r0` / outer `r1`.
    pub fn fill_ring(&mut self, cy: f32, cx: f32, r0: f32, r1: f32, color: Color) {
        let (c, h, w) = self.dims();
        for ch in 0..c {
            let v = color.component(ch);
            for y in 0..h {
                for x in 0..w {
                    let dy = y as f32 - cy;
                    let dx = x as f32 - cx;
                    let d2 = dy * dy + dx * dx;
                    if d2 >= r0 * r0 && d2 <= r1 * r1 {
                        self.set(ch, y, x, v).expect("in bounds");
                    }
                }
            }
        }
    }

    /// Draws a thick line segment from `(y0, x0)` to `(y1, x1)`.
    pub fn draw_line(&mut self, y0: f32, x0: f32, y1: f32, x1: f32, thickness: f32, color: Color) {
        let (c, h, w) = self.dims();
        let vy = y1 - y0;
        let vx = x1 - x0;
        let len2 = (vy * vy + vx * vx).max(1e-9);
        let half = thickness / 2.0;
        for ch in 0..c {
            let v = color.component(ch);
            for y in 0..h {
                for x in 0..w {
                    let py = y as f32 - y0;
                    let px = x as f32 - x0;
                    let t = ((py * vy + px * vx) / len2).clamp(0.0, 1.0);
                    let dy = py - t * vy;
                    let dx = px - t * vx;
                    if (dy * dy + dx * dx).sqrt() <= half {
                        self.set(ch, y, x, v).expect("in bounds");
                    }
                }
            }
        }
    }

    /// Overlays a checkerboard with cells of `cell` pixels, writing
    /// `color` into the "on" cells only.
    pub fn checkerboard(&mut self, cell: usize, color: Color) {
        let (c, h, w) = self.dims();
        let cell = cell.max(1);
        for ch in 0..c {
            let v = color.component(ch);
            for y in 0..h {
                for x in 0..w {
                    if ((y / cell) + (x / cell)).is_multiple_of(2) {
                        self.set(ch, y, x, v).expect("in bounds");
                    }
                }
            }
        }
    }

    /// Fills with a linear gradient from `from` to `to` along an angle
    /// given in degrees (0° = left→right).
    pub fn linear_gradient(&mut self, angle_degrees: f32, from: Color, to: Color) {
        let (c, h, w) = self.dims();
        let theta = angle_degrees.to_radians();
        let (dy, dx) = (theta.sin(), theta.cos());
        let diag = ((h * h + w * w) as f32).sqrt();
        for ch in 0..c {
            let a = from.component(ch);
            let b = to.component(ch);
            for y in 0..h {
                for x in 0..w {
                    let proj = (y as f32 * dy + x as f32 * dx) / diag + 0.5;
                    let t = proj.clamp(0.0, 1.0);
                    self.set(ch, y, x, a + (b - a) * t).expect("in bounds");
                }
            }
        }
    }

    /// Draws parallel stripes of width `stripe` at the given angle.
    pub fn stripes(&mut self, angle_degrees: f32, stripe: usize, color: Color) {
        let (c, h, w) = self.dims();
        let theta = angle_degrees.to_radians();
        let (dy, dx) = (theta.sin(), theta.cos());
        let stripe = stripe.max(1) as f32;
        for ch in 0..c {
            let v = color.component(ch);
            for y in 0..h {
                for x in 0..w {
                    let proj = y as f32 * dy + x as f32 * dx;
                    if (proj / stripe).floor() as i64 % 2 == 0 {
                        self.set(ch, y, x, v).expect("in bounds");
                    }
                }
            }
        }
    }

    /// Adds i.i.d. Gaussian pixel noise with standard deviation `std`,
    /// then clamps to `[0, 1]`.
    pub fn add_noise(&mut self, std: f32, rng: &mut impl Rng) {
        for v in self.data_mut() {
            // Box–Muller using two uniforms.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *v = (*v + z as f32 * std).clamp(0.0, 1.0);
        }
    }

    /// Darkens pixels towards the border (vignette), keeping the
    /// center intact. `strength` in `[0, 1]`.
    pub fn vignette(&mut self, strength: f32) {
        let (c, h, w) = self.dims();
        let cy = (h as f32 - 1.0) / 2.0;
        let cx = (w as f32 - 1.0) / 2.0;
        let rmax = (cy * cy + cx * cx).sqrt().max(1e-6);
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let dy = y as f32 - cy;
                    let dx = x as f32 - cx;
                    let r = (dy * dy + dx * dx).sqrt() / rmax;
                    let factor = 1.0 - strength * r * r;
                    let v = self.get(ch, y, x).expect("in bounds");
                    self.set(ch, y, x, v * factor.max(0.0)).expect("in bounds");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fill_color_sets_channels_independently() {
        let mut img = Image::new(3, 2, 2);
        img.fill_color(Color(0.1, 0.2, 0.3));
        assert_eq!(img.get(0, 0, 0).unwrap(), 0.1);
        assert_eq!(img.get(1, 0, 0).unwrap(), 0.2);
        assert_eq!(img.get(2, 0, 0).unwrap(), 0.3);
    }

    #[test]
    fn fill_rect_clips_to_frame() {
        let mut img = Image::new(1, 4, 4);
        img.fill_rect(2, 2, 10, 10, Color::grey(1.0));
        assert_eq!(img.get(0, 3, 3).unwrap(), 1.0);
        assert_eq!(img.get(0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn circle_center_is_filled_corner_is_not() {
        let mut img = Image::new(1, 9, 9);
        img.fill_circle(4.0, 4.0, 2.0, Color::grey(1.0));
        assert_eq!(img.get(0, 4, 4).unwrap(), 1.0);
        assert_eq!(img.get(0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn ring_excludes_center() {
        let mut img = Image::new(1, 11, 11);
        img.fill_ring(5.0, 5.0, 3.0, 5.0, Color::grey(1.0));
        assert_eq!(img.get(0, 5, 5).unwrap(), 0.0);
        assert_eq!(img.get(0, 5, 9).unwrap(), 1.0);
    }

    #[test]
    fn line_covers_endpoints() {
        let mut img = Image::new(1, 8, 8);
        img.draw_line(1.0, 1.0, 6.0, 6.0, 1.5, Color::grey(1.0));
        assert_eq!(img.get(0, 1, 1).unwrap(), 1.0);
        assert_eq!(img.get(0, 6, 6).unwrap(), 1.0);
        assert_eq!(img.get(0, 0, 7).unwrap(), 0.0);
    }

    #[test]
    fn checkerboard_alternates() {
        let mut img = Image::new(1, 4, 4);
        img.checkerboard(2, Color::grey(1.0));
        assert_eq!(img.get(0, 0, 0).unwrap(), 1.0);
        assert_eq!(img.get(0, 0, 2).unwrap(), 0.0);
        assert_eq!(img.get(0, 2, 2).unwrap(), 1.0);
    }

    #[test]
    fn gradient_monotone_along_axis() {
        let mut img = Image::new(1, 2, 16);
        img.linear_gradient(0.0, Color::grey(0.0), Color::grey(1.0));
        let left = img.get(0, 0, 0).unwrap();
        let right = img.get(0, 0, 15).unwrap();
        assert!(right > left);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = Image::new(1, 8, 8);
        a.fill(0.5);
        let mut b = a.clone();
        a.add_noise(0.1, &mut StdRng::seed_from_u64(5));
        b.add_noise(0.1, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn noise_keeps_values_in_unit_range() {
        let mut img = Image::new(1, 16, 16);
        img.fill(0.5);
        img.add_noise(2.0, &mut StdRng::seed_from_u64(1));
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn vignette_darkens_corners_not_center() {
        let mut img = Image::new(1, 9, 9);
        img.fill(1.0);
        img.vignette(0.8);
        assert!(img.get(0, 4, 4).unwrap() > 0.95);
        assert!(img.get(0, 0, 0).unwrap() < 0.5);
    }
}
