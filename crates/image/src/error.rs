//! Error type for image operations.

use std::fmt;

/// Errors produced by image construction, conversion and IO.
#[derive(Debug)]
pub enum ImageError {
    /// Buffer length does not match `channels * height * width`.
    LengthMismatch {
        /// Length of the provided buffer.
        len: usize,
        /// Expected element count.
        expected: usize,
    },
    /// Two images have different dimensions.
    DimensionMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Dimensions `(c, h, w)` of the left operand.
        lhs: (usize, usize, usize),
        /// Dimensions `(c, h, w)` of the right operand.
        rhs: (usize, usize, usize),
    },
    /// The operation requires a specific channel count.
    ChannelMismatch {
        /// Human-readable name of the operation.
        op: &'static str,
        /// Expected channel count.
        expected: usize,
        /// Actual channel count.
        actual: usize,
    },
    /// A pixel index was out of range.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// The tensor passed to [`crate::Image::from_tensor`] has the
    /// wrong element count.
    TensorShape {
        /// Element count of the tensor.
        numel: usize,
        /// Expected element count.
        expected: usize,
    },
    /// An IO failure while reading or writing an image file.
    Io(std::io::Error),
    /// The file is not a supported PPM/PGM format.
    Format(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::LengthMismatch { len, expected } => {
                write!(
                    f,
                    "buffer of length {len} does not match image with {expected} elements"
                )
            }
            ImageError::DimensionMismatch { op, lhs, rhs } => {
                write!(f, "dimension mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            ImageError::ChannelMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op} requires {expected} channels, got {actual}")
            }
            ImageError::OutOfRange { index, bound } => {
                write!(f, "index {index} out of range (bound {bound})")
            }
            ImageError::TensorShape { numel, expected } => {
                write!(
                    f,
                    "tensor with {numel} elements cannot fill image with {expected}"
                )
            }
            ImageError::Io(e) => write!(f, "io error: {e}"),
            ImageError::Format(msg) => write!(f, "unsupported image format: {msg}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ImageError::LengthMismatch {
            len: 2,
            expected: 12,
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: ImageError = io.into();
        assert!(matches!(e, ImageError::Io(_)));
    }
}
