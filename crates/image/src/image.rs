//! The CHW `f32` image container.

use oasis_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{ImageError, Result};

/// A dense `f32` image in CHW (channel-major) layout.
///
/// Pixel values are nominally in `[0, 1]`; transforms that produce
/// out-of-range values should call [`Image::clamp01`] before the image
/// is consumed by training or PSNR code.
///
/// ```
/// use oasis_image::Image;
///
/// # fn main() -> Result<(), oasis_image::ImageError> {
/// let mut img = Image::new(1, 2, 2);
/// img.set(0, 1, 1, 0.75)?;
/// assert_eq!(img.get(0, 1, 1)?, 0.75);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a black (all-zero) image.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Image {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Creates an image from a CHW buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::LengthMismatch`] if the buffer length does
    /// not equal `channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<f32>) -> Result<Self> {
        let expected = channels * height * width;
        if data.len() != expected {
            return Err(ImageError::LengthMismatch {
                len: data.len(),
                expected,
            });
        }
        Ok(Image {
            channels,
            height,
            width,
            data,
        })
    }

    /// Builds an image from a flat tensor (rank-1 of length `c*h*w`).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::TensorShape`] on element-count mismatch.
    pub fn from_tensor(t: &Tensor, channels: usize, height: usize, width: usize) -> Result<Self> {
        let expected = channels * height * width;
        if t.numel() != expected {
            return Err(ImageError::TensorShape {
                numel: t.numel(),
                expected,
            });
        }
        Ok(Image {
            channels,
            height,
            width,
            data: t.data().to_vec(),
        })
    }

    /// Flattens the image into a rank-1 tensor of length `c*h*w`.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_slice(&self.data)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `(channels, height, width)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Total number of scalar elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The flat CHW buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat CHW buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads the pixel at `(channel, y, x)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfRange`] on out-of-bounds access.
    pub fn get(&self, channel: usize, y: usize, x: usize) -> Result<f32> {
        Ok(self.data[self.offset(channel, y, x)?])
    }

    /// Writes the pixel at `(channel, y, x)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfRange`] on out-of-bounds access.
    pub fn set(&mut self, channel: usize, y: usize, x: usize, value: f32) -> Result<()> {
        let off = self.offset(channel, y, x)?;
        self.data[off] = value;
        Ok(())
    }

    /// Unchecked pixel read used by hot interpolation loops.
    ///
    /// Returns `0.0` outside the image bounds (zero padding), which is
    /// the fill convention for all geometric transforms (paper Eq. 2–5
    /// with the usual implementation fill).
    pub fn get_or_zero(&self, channel: usize, y: isize, x: isize) -> f32 {
        if channel >= self.channels
            || y < 0
            || x < 0
            || y as usize >= self.height
            || x as usize >= self.width
        {
            return 0.0;
        }
        self.data[(channel * self.height + y as usize) * self.width + x as usize]
    }

    fn offset(&self, channel: usize, y: usize, x: usize) -> Result<usize> {
        if channel >= self.channels {
            return Err(ImageError::OutOfRange {
                index: channel,
                bound: self.channels,
            });
        }
        if y >= self.height {
            return Err(ImageError::OutOfRange {
                index: y,
                bound: self.height,
            });
        }
        if x >= self.width {
            return Err(ImageError::OutOfRange {
                index: x,
                bound: self.width,
            });
        }
        Ok((channel * self.height + y) * self.width + x)
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Mean over all channels and pixels — the scalar "measurement"
    /// the RTF attack bins on (paper §IV-B). Accumulated in f64 so the
    /// measurement is stable to well below an RTF bin width.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Applies `f` to every element, returning a new image.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Image {
        let mut out = self.clone();
        out.data.iter_mut().for_each(|v| *v = f(*v));
        out
    }

    /// Clamps all values into `[0, 1]`.
    pub fn clamp01(&self) -> Image {
        self.map(|v| v.clamp(0.0, 1.0))
    }

    /// Pixel-wise average of several same-shape images — the "linear
    /// combination" visualization used in the paper's Figures 7–12.
    ///
    /// # Errors
    ///
    /// Returns an error if `images` is empty or shapes differ.
    pub fn blend(images: &[Image]) -> Result<Image> {
        let first = images
            .first()
            .ok_or(ImageError::Format("blend of zero images".into()))?;
        let mut out = Image::new(first.channels, first.height, first.width);
        for img in images {
            if img.dims() != first.dims() {
                return Err(ImageError::DimensionMismatch {
                    op: "blend",
                    lhs: first.dims(),
                    rhs: img.dims(),
                });
            }
            for (o, &v) in out.data.iter_mut().zip(&img.data) {
                *o += v;
            }
        }
        let k = images.len() as f32;
        out.data.iter_mut().for_each(|v| *v /= k);
        Ok(out)
    }

    /// Box-filter downsampling to `out_h × out_w` (used to cheapen
    /// large all-pairs PSNR matching; reconstruction scoring still
    /// happens at full resolution).
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn downsample(&self, out_h: usize, out_w: usize) -> Image {
        assert!(out_h > 0 && out_w > 0, "target dims must be positive");
        let (c, h, w) = self.dims();
        if out_h >= h && out_w >= w {
            return self.clone();
        }
        let mut out = Image::new(c, out_h, out_w);
        for ch in 0..c {
            for oy in 0..out_h {
                let y0 = oy * h / out_h;
                let y1 = (((oy + 1) * h).div_ceil(out_h)).min(h).max(y0 + 1);
                for ox in 0..out_w {
                    let x0 = ox * w / out_w;
                    let x1 = (((ox + 1) * w).div_ceil(out_w)).min(w).max(x0 + 1);
                    let mut acc = 0.0f32;
                    for y in y0..y1 {
                        for x in x0..x1 {
                            acc += self.get(ch, y, x).expect("in bounds");
                        }
                    }
                    let count = ((y1 - y0) * (x1 - x0)) as f32;
                    out.set(ch, oy, ox, acc / count).expect("in bounds");
                }
            }
        }
        out
    }

    /// Extracts a single channel as a new 1-channel image.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfRange`] if `channel` is out of bounds.
    pub fn channel(&self, channel: usize) -> Result<Image> {
        if channel >= self.channels {
            return Err(ImageError::OutOfRange {
                index: channel,
                bound: self.channels,
            });
        }
        let plane = self.height * self.width;
        Ok(Image {
            channels: 1,
            height: self.height,
            width: self.width,
            data: self.data[channel * plane..(channel + 1) * plane].to_vec(),
        })
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Image({}×{}×{}, mean={:.4})",
            self.channels,
            self.height,
            self.width,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Image::from_vec(3, 2, 2, vec![0.0; 11]).is_err());
        assert!(Image::from_vec(3, 2, 2, vec![0.0; 12]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = Image::new(2, 3, 4);
        img.set(1, 2, 3, 0.5).unwrap();
        assert_eq!(img.get(1, 2, 3).unwrap(), 0.5);
        assert!(img.get(2, 0, 0).is_err());
        assert!(img.get(0, 3, 0).is_err());
        assert!(img.get(0, 0, 4).is_err());
    }

    #[test]
    fn get_or_zero_pads_outside() {
        let mut img = Image::new(1, 2, 2);
        img.fill(1.0);
        assert_eq!(img.get_or_zero(0, -1, 0), 0.0);
        assert_eq!(img.get_or_zero(0, 0, 2), 0.0);
        assert_eq!(img.get_or_zero(0, 1, 1), 1.0);
    }

    #[test]
    fn tensor_round_trip() {
        let img = Image::from_vec(1, 2, 2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let t = img.to_tensor();
        let back = Image::from_tensor(&t, 1, 2, 2).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn from_tensor_validates_count() {
        let t = Tensor::zeros(&[5]);
        assert!(Image::from_tensor(&t, 1, 2, 2).is_err());
    }

    #[test]
    fn mean_is_arithmetic_mean() {
        let img = Image::from_vec(1, 1, 4, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(img.mean(), 0.5);
    }

    #[test]
    fn blend_averages() {
        let a = Image::from_vec(1, 1, 2, vec![0.0, 1.0]).unwrap();
        let b = Image::from_vec(1, 1, 2, vec![1.0, 0.0]).unwrap();
        let m = Image::blend(&[a, b]).unwrap();
        assert_eq!(m.data(), &[0.5, 0.5]);
    }

    #[test]
    fn blend_rejects_mixed_dims() {
        let a = Image::new(1, 2, 2);
        let b = Image::new(1, 2, 3);
        assert!(Image::blend(&[a, b]).is_err());
    }

    #[test]
    fn clamp01_bounds() {
        let img = Image::from_vec(1, 1, 3, vec![-0.5, 0.5, 1.5]).unwrap();
        assert_eq!(img.clamp01().data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn downsample_preserves_mean_of_uniform() {
        let mut img = Image::new(1, 8, 8);
        img.fill(0.4);
        let d = img.downsample(4, 4);
        assert_eq!(d.dims(), (1, 4, 4));
        assert!(d.data().iter().all(|&v| (v - 0.4).abs() < 1e-6));
    }

    #[test]
    fn downsample_box_averages() {
        let mut img = Image::new(1, 2, 2);
        img.set(0, 0, 0, 1.0).unwrap();
        let d = img.downsample(1, 1);
        assert!((d.get(0, 0, 0).unwrap() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn downsample_no_op_when_target_larger() {
        let img = Image::new(1, 4, 4);
        assert_eq!(img.downsample(8, 8), img);
    }

    #[test]
    fn channel_extraction() {
        let img = Image::from_vec(2, 1, 2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let c1 = img.channel(1).unwrap();
        assert_eq!(c1.data(), &[0.3, 0.4]);
        assert!(img.channel(2).is_err());
    }
}
