//! Spec strings: the declarative vocabulary naming every attack,
//! defense, and workload of the evaluation grid.
//!
//! Every spec round-trips through [`std::fmt::Display`] /
//! [`std::str::FromStr`], so a [`crate::ScenarioReport`] can record
//! the exact provenance of the numbers it holds and any experiment
//! can be reproduced from its printed spec alone.
//!
//! Attack and defense specs are **string-keyed**: `family[:args]`
//! values whose parsing and construction dispatch through the
//! [`crate::registry`] — new families plug in with one
//! [`crate::register_attack_family`] /
//! [`crate::register_defense_family`] call. Defense specs
//! additionally **stack** with `+` (`oasis:MR+dp:1,0.01`): the parts
//! build one [`DefenseStack`] applying batch stages then update
//! stages in spec order.

use oasis_attacks::{ActiveAttack, DEFAULT_ACTIVATION_TARGET};
use oasis_augment::PolicyKind;
use oasis_data::{synthetic_dataset, Dataset};
use oasis_fl::DefenseStack;
use oasis_image::Image;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::registry::{attack_family, cah_args, defense_family};
use crate::{Scale, ScenarioError};

/// An active reconstruction attack, as a string-keyed value.
///
/// Built-in spec grammar (round-tripping through `Display`; run
/// `scenario --list-specs` for whatever is registered):
///
/// * `rtf:N` — Robbing the Fed with `N` attacked neurons,
/// * `cah:N` — Curious Abandon Honesty with `N` trap neurons at the
///   default activation target, or `cah:N,G` for target `G`,
/// * `linear` — gradient inversion on a single-layer softmax model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackSpec {
    family: String,
    args: Option<String>,
}

impl AttackSpec {
    /// An RTF spec.
    pub fn rtf(neurons: usize) -> Self {
        AttackSpec {
            family: "rtf".into(),
            args: Some(neurons.to_string()),
        }
    }

    /// A CAH spec at the default activation target.
    pub fn cah(neurons: usize) -> Self {
        AttackSpec::cah_with_gamma(neurons, DEFAULT_ACTIVATION_TARGET)
    }

    /// A CAH spec with an explicit activation target γ.
    pub fn cah_with_gamma(neurons: usize, gamma: f64) -> Self {
        AttackSpec {
            family: "cah".into(),
            args: Some(cah_args(neurons, gamma)),
        }
    }

    /// The linear-model inversion spec (paper §IV-D).
    pub fn linear() -> Self {
        AttackSpec {
            family: "linear".into(),
            args: None,
        }
    }

    /// Short family name ("rtf", "cah", "linear", …) — the registry
    /// key.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The spec's canonical arguments, if the family takes any.
    pub fn args(&self) -> Option<&str> {
        self.args.as_deref()
    }

    /// The same spec with a different neuron count (no-op for
    /// families without a neuron knob, e.g. `linear`) — how grid
    /// sweeps vary one axis of an attack.
    pub fn with_neurons(&self, neurons: usize) -> Self {
        let family = attack_family(&self.family).expect("constructed specs have a family");
        match (family.with_neurons)(self.args(), neurons) {
            Some(args) => AttackSpec {
                family: self.family.clone(),
                args: Some(args),
            },
            None => self.clone(),
        }
    }

    /// How many calibration images the attack wants for its
    /// measurement statistics (0 = needs none).
    pub fn default_calibration(&self) -> usize {
        let family = attack_family(&self.family).expect("constructed specs have a family");
        (family.calibration)(self.args())
    }

    /// Whether trial batches should default to unique-label sampling
    /// (the linear-model inversion needs one class per sample).
    pub fn unique_labels_default(&self) -> bool {
        attack_family(&self.family)
            .expect("constructed specs have a family")
            .unique_labels
    }

    /// Constructs the attack behind this spec via the family
    /// registry.
    ///
    /// `calibration` holds the public images the dishonest server fits
    /// its measurement statistics on; `classes` is the label-space
    /// size of the attacked workload (used by `linear`).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (e.g. empty calibration for a
    /// calibrated attack).
    pub fn build(
        &self,
        calibration: &[Image],
        classes: usize,
    ) -> Result<Box<dyn ActiveAttack>, ScenarioError> {
        let family = attack_family(&self.family)?;
        (family.build)(self.args(), calibration, classes)
    }
}

impl fmt::Display for AttackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.args {
            Some(args) => write!(f, "{}:{args}", self.family),
            None => f.write_str(&self.family),
        }
    }
}

impl FromStr for AttackSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, args) = split_spec(s);
        let family = attack_family(name)?;
        Ok(AttackSpec {
            family: name.to_string(),
            args: (family.canon)(args)?,
        })
    }
}

impl Serialize for AttackSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for AttackSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("attack spec", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// One `family[:args]` part of a defense stack.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DefensePart {
    family: String,
    args: Option<String>,
}

impl fmt::Display for DefensePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.args {
            Some(args) => write!(f, "{}:{args}", self.family),
            None => f.write_str(&self.family),
        }
    }
}

/// A client-side defense stack (possibly empty), as a string-keyed
/// value.
///
/// Built-in spec grammar (round-tripping through `Display`; run
/// `scenario --list-specs` for whatever is registered):
///
/// * `none` — undefended baseline (also parses from `wo`, `without`),
/// * `oasis:P` — the OASIS defense with policy abbreviation `P`
///   (`MR`, `mR`, `SH`, `HFlip`, `VFlip`, `MR+SH`, `WO`),
/// * `ats` — ATSPrivacy-style transform *replacement* baseline,
/// * `dp:C,S` — DP-SGD update stage with clip norm `C` and noise
///   multiplier `S`,
/// * `clip:C` — clip-only update stage,
/// * any `+`-joined stack of distinct families, applied in order:
///   `oasis:MR+dp:1,0.01` runs the OASIS batch stage, then DP-SGD's
///   clip + noise on the uploaded update.
///
/// Stacks compose in Rust with [`DefenseSpec::stacked`] or `+`:
///
/// ```
/// use oasis_scenario::DefenseSpec;
/// use oasis_augment::PolicyKind;
///
/// let stack = DefenseSpec::oasis(PolicyKind::MajorRotation) + DefenseSpec::dp(1.0, 0.01);
/// assert_eq!(stack.to_string(), "oasis:MR+dp:1,0.01");
/// assert_eq!(stack, "oasis:MR+dp:1,0.01".parse().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DefenseSpec {
    parts: Vec<DefensePart>,
}

impl DefenseSpec {
    /// The undefended baseline: the empty stack.
    pub fn none() -> Self {
        DefenseSpec::default()
    }

    /// A single-part spec from a registered family's raw args.
    ///
    /// # Errors
    ///
    /// Rejects unknown families and invalid args.
    pub fn part(family: &str, args: Option<&str>) -> Result<Self, ScenarioError> {
        let f = defense_family(family)?;
        Ok(DefenseSpec {
            parts: vec![DefensePart {
                family: family.to_string(),
                args: (f.canon)(args)?,
            }],
        })
    }

    /// An OASIS defense spec with the given policy.
    pub fn oasis(kind: PolicyKind) -> Self {
        DefenseSpec {
            parts: vec![DefensePart {
                family: "oasis".into(),
                args: Some(kind.abbrev().to_string()),
            }],
        }
    }

    /// The ATSPrivacy-style replacement baseline spec.
    pub fn ats() -> Self {
        DefenseSpec {
            parts: vec![DefensePart {
                family: "ats".into(),
                args: None,
            }],
        }
    }

    /// A DP-SGD spec with clip norm `clip` and noise multiplier
    /// `noise`.
    ///
    /// # Panics
    ///
    /// Panics when `clip` is not positive or `noise` is negative —
    /// the same bounds the parse path enforces, so every constructed
    /// spec round-trips through `Display` ⇄ `FromStr`.
    pub fn dp(clip: f32, noise: f32) -> Self {
        assert!(clip > 0.0, "dp clip bound must be positive, got {clip}");
        assert!(
            noise >= 0.0,
            "dp noise multiplier must be non-negative, got {noise}"
        );
        DefenseSpec {
            parts: vec![DefensePart {
                family: "dp".into(),
                args: Some(format!("{clip},{noise}")),
            }],
        }
    }

    /// A clip-only spec with L2 bound `clip`.
    ///
    /// # Panics
    ///
    /// Panics when `clip` is not positive (the bound the parse path
    /// enforces).
    pub fn clip(clip: f32) -> Self {
        assert!(clip > 0.0, "clip bound must be positive, got {clip}");
        DefenseSpec {
            parts: vec![DefensePart {
                family: "clip".into(),
                args: Some(clip.to_string()),
            }],
        }
    }

    /// Whether this is the undefended baseline.
    pub fn is_none(&self) -> bool {
        self.parts.is_empty()
    }

    /// The stacked family names, in application order.
    pub fn families(&self) -> Vec<&str> {
        self.parts.iter().map(|p| p.family.as_str()).collect()
    }

    /// Appends `other`'s parts to this stack, preserving order.
    ///
    /// # Errors
    ///
    /// Rejects duplicate families (stacking a defense with itself has
    /// no defined semantics).
    pub fn stacked(mut self, other: DefenseSpec) -> Result<Self, ScenarioError> {
        for part in other.parts {
            if self.parts.iter().any(|p| p.family == part.family) {
                return Err(ScenarioError::BadSpec(format!(
                    "duplicate defense family `{}` in stack",
                    part.family
                )));
            }
            self.parts.push(part);
        }
        Ok(self)
    }

    /// Builds the [`DefenseStack`] behind this spec via the family
    /// registry: one [`oasis_fl::Defense`] per part, in spec order.
    ///
    /// The stack *owns* every stage of every part — batch transforms
    /// **and** update perturbations — so a DP part can no longer be
    /// dropped by a caller that forgets a side channel (the
    /// historical `dp_params()` bug class).
    ///
    /// # Errors
    ///
    /// Propagates registry lookup and construction failures.
    pub fn build(&self) -> Result<DefenseStack, ScenarioError> {
        let mut stack = DefenseStack::identity();
        for part in &self.parts {
            let family = defense_family(&part.family)?;
            stack.push((family.build)(part.args.as_deref())?);
        }
        Ok(stack)
    }
}

impl std::ops::Add for DefenseSpec {
    type Output = DefenseSpec;

    /// Stacks two defense specs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate families; use [`DefenseSpec::stacked`] for
    /// a fallible version.
    fn add(self, other: DefenseSpec) -> DefenseSpec {
        self.stacked(other).expect("duplicate defense family")
    }
}

impl fmt::Display for DefenseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return f.write_str("none");
        }
        for (i, part) in self.parts.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl FromStr for DefenseSpec {
    type Err = ScenarioError;

    /// Parses a `+`-joined stack.
    ///
    /// Some part grammars contain `+` themselves (`oasis:MR+SH`), so
    /// parts are matched greedily: each part consumes as many
    /// `+`-separated segments as still parse as one part.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if matches!(s, "none" | "wo" | "without") {
            return Ok(DefenseSpec::none());
        }
        let segments: Vec<&str> = s.split('+').collect();
        let mut spec = DefenseSpec::none();
        let mut i = 0;
        while i < segments.len() {
            let mut candidate = String::new();
            let mut matched: Option<(usize, DefensePart)> = None;
            for (j, segment) in segments.iter().enumerate().skip(i) {
                if j > i {
                    candidate.push('+');
                }
                candidate.push_str(segment);
                if let Ok(part) = parse_part(&candidate) {
                    matched = Some((j, part));
                }
            }
            match matched {
                Some((j, part)) => {
                    spec = spec.stacked(DefenseSpec { parts: vec![part] })?;
                    i = j + 1;
                }
                // Nothing starting at segment `i` parses; surface the
                // single-segment error for context.
                None => return Err(parse_part(segments[i]).expect_err("greedy match missed")),
            }
        }
        Ok(spec)
    }
}

/// Parses one stack part. `none` is rejected here: the baseline is
/// the whole-spec `none`, never a stack member.
fn parse_part(s: &str) -> Result<DefensePart, ScenarioError> {
    let (name, args) = split_spec(s);
    if matches!(name, "none" | "wo" | "without") {
        return Err(ScenarioError::BadSpec(
            "`none` cannot be part of a stack (it is the empty stack)".into(),
        ));
    }
    let family = defense_family(name)?;
    Ok(DefensePart {
        family: name.to_string(),
        args: (family.canon)(args)?,
    })
}

impl Serialize for DefenseSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for DefenseSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("defense spec", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// An evaluation workload, as a value.
///
/// Spec grammar: `imagenette`, `cifar100`, plus the 100-class
/// synthetic variants `imagenette100c` / `cifar100c` used by the
/// linear-model experiment, whose batches need ≥ 64 unique labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The ImageNet (Imagenette subset) stand-in, 10 classes.
    ImageNette,
    /// The CIFAR100 stand-in, 100 classes.
    Cifar100,
    /// 100-class synthetic workload at ImageNette resolution.
    ImageNette100c,
    /// 100-class synthetic workload at CIFAR resolution.
    Cifar100c,
}

impl WorkloadSpec {
    /// Display name matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::ImageNette => "ImageNet (ImageNette-like)",
            WorkloadSpec::Cifar100 => "CIFAR100 (CIFAR100-like)",
            WorkloadSpec::ImageNette100c => "ImageNet-like (100-class synthetic)",
            WorkloadSpec::Cifar100c => "CIFAR100-like (100-class synthetic)",
        }
    }

    /// Number of classes in the workload's label space.
    pub fn num_classes(&self) -> usize {
        match self {
            WorkloadSpec::ImageNette => 10,
            WorkloadSpec::Cifar100 | WorkloadSpec::ImageNette100c | WorkloadSpec::Cifar100c => 100,
        }
    }

    /// Image side at the given scale.
    pub fn side(&self, scale: Scale) -> usize {
        match self {
            WorkloadSpec::ImageNette | WorkloadSpec::ImageNette100c => scale.imagenette_side(),
            WorkloadSpec::Cifar100 | WorkloadSpec::Cifar100c => scale.cifar_side(),
        }
    }

    /// Builds the dataset at the given scale with enough samples for
    /// batches up to `max_batch`.
    pub fn dataset(&self, scale: Scale, max_batch: usize, seed: u64) -> Dataset {
        match self {
            WorkloadSpec::ImageNette => {
                let spc = (max_batch * 2).div_ceil(10).max(8);
                oasis_data::imagenette_like_with(spc, scale.imagenette_side(), seed)
            }
            WorkloadSpec::Cifar100 => {
                let spc = (max_batch * 2).div_ceil(100).max(2);
                oasis_data::cifar100_like_at(spc, scale.cifar_side(), seed)
            }
            WorkloadSpec::ImageNette100c => synthetic_dataset(
                "ImageNet-like-100c",
                100,
                (max_batch * 2).div_ceil(100).max(2),
                scale.imagenette_side(),
                seed,
            ),
            WorkloadSpec::Cifar100c => synthetic_dataset(
                "CIFAR100-like",
                100,
                (max_batch * 2).div_ceil(100).max(2),
                scale.cifar_side(),
                seed,
            ),
        }
    }

    /// The 100-class variant of this workload at its resolution — the
    /// label space the linear-model inversion needs (paper §IV-D).
    pub fn linear_variant(&self) -> WorkloadSpec {
        match self {
            WorkloadSpec::ImageNette | WorkloadSpec::ImageNette100c => WorkloadSpec::ImageNette100c,
            WorkloadSpec::Cifar100 | WorkloadSpec::Cifar100c => WorkloadSpec::Cifar100c,
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadSpec::ImageNette => "imagenette",
            WorkloadSpec::Cifar100 => "cifar100",
            WorkloadSpec::ImageNette100c => "imagenette100c",
            WorkloadSpec::Cifar100c => "cifar100c",
        };
        f.write_str(name)
    }
}

impl FromStr for WorkloadSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "imagenette" | "imagenet" => Ok(WorkloadSpec::ImageNette),
            "cifar100" | "cifar" => Ok(WorkloadSpec::Cifar100),
            "imagenette100c" => Ok(WorkloadSpec::ImageNette100c),
            "cifar100c" => Ok(WorkloadSpec::Cifar100c),
            other => Err(ScenarioError::BadSpec(format!(
                "unknown workload `{other}` (expected imagenette, cifar100, imagenette100c, or cifar100c)"
            ))),
        }
    }
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("workload spec", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// Splits `family:args` into its two halves.
fn split_spec(s: &str) -> (&str, Option<&str>) {
    match s.split_once(':') {
        Some((family, args)) => (family, Some(args)),
        None => (s, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_specs_round_trip() {
        for spec in [
            AttackSpec::rtf(512),
            AttackSpec::cah(700),
            AttackSpec::cah_with_gamma(64, 0.004),
            AttackSpec::linear(),
        ] {
            assert_eq!(spec.to_string().parse::<AttackSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn defense_specs_round_trip() {
        let mut specs = vec![
            DefenseSpec::none(),
            DefenseSpec::ats(),
            DefenseSpec::dp(1.0, 0.5),
            DefenseSpec::clip(2.5),
        ];
        specs.extend(PolicyKind::all().map(DefenseSpec::oasis));
        for spec in specs {
            assert_eq!(spec.to_string().parse::<DefenseSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn stacked_defense_specs_round_trip() {
        for stack in [
            DefenseSpec::oasis(PolicyKind::MajorRotation) + DefenseSpec::dp(1.0, 0.01),
            DefenseSpec::dp(1.0, 0.01) + DefenseSpec::oasis(PolicyKind::MajorRotation),
            DefenseSpec::oasis(PolicyKind::MajorRotationShearing) + DefenseSpec::dp(2.0, 0.5),
            DefenseSpec::ats() + DefenseSpec::clip(0.5),
            DefenseSpec::oasis(PolicyKind::Shearing)
                + DefenseSpec::dp(1.0, 0.25)
                + DefenseSpec::clip(3.0),
        ] {
            let printed = stack.to_string();
            assert_eq!(printed.parse::<DefenseSpec>().unwrap(), stack, "{printed}");
        }
    }

    #[test]
    fn stack_grammar_is_greedy_over_policy_plus() {
        // `oasis:MR+SH` is one part (the MR+SH policy), not a stack
        // of `oasis:MR` and an unknown `SH` family.
        let spec: DefenseSpec = "oasis:MR+SH".parse().unwrap();
        assert_eq!(spec.families(), vec!["oasis"]);
        // ...and still stacks with further parts.
        let spec: DefenseSpec = "oasis:MR+SH+dp:1,0.01".parse().unwrap();
        assert_eq!(spec.families(), vec!["oasis", "dp"]);
        assert_eq!(spec.to_string(), "oasis:MR+SH+dp:1,0.01");
    }

    #[test]
    fn stack_order_is_preserved() {
        let a: DefenseSpec = "oasis:MR+dp:1,0.01".parse().unwrap();
        let b: DefenseSpec = "dp:1,0.01+oasis:MR".parse().unwrap();
        assert_ne!(a, b);
        assert_eq!(a.families(), vec!["oasis", "dp"]);
        assert_eq!(b.families(), vec!["dp", "oasis"]);
    }

    #[test]
    fn duplicate_families_are_rejected() {
        let err = "oasis:MR+oasis:SH".parse::<DefenseSpec>().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        let err = "dp:1,0.5+ats+dp:2,0.1".parse::<DefenseSpec>().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        assert!(DefenseSpec::ats().stacked(DefenseSpec::ats()).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate defense family")]
    fn add_panics_on_duplicates() {
        let _ = DefenseSpec::dp(1.0, 0.5) + DefenseSpec::dp(2.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "clip bound must be positive")]
    fn dp_constructor_enforces_parse_bounds() {
        let _ = DefenseSpec::dp(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "clip bound must be positive")]
    fn clip_constructor_enforces_parse_bounds() {
        let _ = DefenseSpec::clip(-1.0);
    }

    #[test]
    fn none_aliases_parse_to_the_empty_stack() {
        for alias in ["none", "wo", "without"] {
            let spec: DefenseSpec = alias.parse().unwrap();
            assert!(spec.is_none());
            assert_eq!(spec, DefenseSpec::none());
            assert_eq!(spec.to_string(), "none");
        }
        assert!(DefenseSpec::none().build().unwrap().is_empty());
    }

    #[test]
    fn none_cannot_be_stacked() {
        for bad in ["none+oasis:MR", "oasis:MR+none", "wo+ats"] {
            let err = bad.parse::<DefenseSpec>().unwrap_err();
            assert!(
                err.to_string().contains("cannot be part of a stack"),
                "`{bad}`: {err}"
            );
        }
    }

    #[test]
    fn workload_specs_round_trip() {
        for spec in [
            WorkloadSpec::ImageNette,
            WorkloadSpec::Cifar100,
            WorkloadSpec::ImageNette100c,
            WorkloadSpec::Cifar100c,
        ] {
            assert_eq!(spec.to_string().parse::<WorkloadSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in ["rtf", "rtf:abc", "cah:12,xyz", "linear:3", "warp:9"] {
            assert!(
                bad.parse::<AttackSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
        for bad in [
            "oasis",
            "oasis:XX",
            "dp:1",
            "dp:a,b",
            "dropout",
            "clip:0",
            "clip:-1",
            "dp:0,1",
            "oasis:MR+dp:1",
            "oasis:MR+warp",
            "",
        ] {
            assert!(
                bad.parse::<DefenseSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
        assert!("mnist".parse::<WorkloadSpec>().is_err());
    }

    #[test]
    fn default_gamma_is_elided() {
        assert_eq!(AttackSpec::cah(700).to_string(), "cah:700");
        let custom = AttackSpec::cah_with_gamma(700, 0.25);
        assert!(custom.to_string().starts_with("cah:700,"));
    }

    #[test]
    fn with_neurons_varies_only_that_axis() {
        assert_eq!(AttackSpec::rtf(100).with_neurons(900), AttackSpec::rtf(900));
        let cah = AttackSpec::cah_with_gamma(100, 0.1);
        assert_eq!(cah.with_neurons(300), AttackSpec::cah_with_gamma(300, 0.1));
        assert_eq!(AttackSpec::linear().with_neurons(5), AttackSpec::linear());
    }

    #[test]
    fn workload_datasets_have_expected_classes() {
        assert_eq!(
            WorkloadSpec::ImageNette
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            10
        );
        assert_eq!(
            WorkloadSpec::Cifar100
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            100
        );
        assert_eq!(
            WorkloadSpec::ImageNette100c
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            100
        );
        assert_eq!(
            WorkloadSpec::Cifar100c
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            100
        );
    }

    #[test]
    fn linear_variant_is_idempotent_and_100_class() {
        for w in [WorkloadSpec::ImageNette, WorkloadSpec::Cifar100] {
            let lv = w.linear_variant();
            assert_eq!(lv, lv.linear_variant());
            assert_eq!(lv.dataset(Scale::Quick, 64, 0).num_classes(), 100);
        }
    }

    #[test]
    fn dp_spec_builds_a_stack_that_owns_the_update_stage() {
        // The historical `dp_params()` side channel is gone: building
        // a dp spec yields a stack whose update stage is live — there
        // is no second call a harness could forget.
        let stack = DefenseSpec::dp(2.0, 0.1).build().unwrap();
        assert!(stack.has_update_stage());
        assert_eq!(stack.clip_norm(), Some(2.0));
        assert!(!DefenseSpec::none().build().unwrap().has_update_stage());
    }

    #[test]
    fn stacked_spec_builds_both_stages() {
        let stack = ("oasis:MR+dp:1,0.01".parse::<DefenseSpec>().unwrap())
            .build()
            .unwrap();
        assert_eq!(stack.names(), vec!["oasis", "dp"]);
        assert!(stack.has_update_stage());
        assert_eq!(stack.clip_norm(), Some(1.0));
        // The batch stage is live too: OASIS MR expands 1 → 4.
        let ds = oasis_data::cifar_like_with(2, 2, 8, 0);
        let batch = oasis_data::Batch::from_items(ds.items().to_vec());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        assert_eq!(stack.process_batch(&batch, &mut rng).len(), batch.len() * 4);
    }
}
