//! Spec strings: the declarative vocabulary naming every attack,
//! defense, and workload of the evaluation grid.
//!
//! Every spec round-trips through [`std::fmt::Display`] /
//! [`std::str::FromStr`], so a [`crate::ScenarioReport`] can record
//! the exact provenance of the numbers it holds and any experiment
//! can be reproduced from its printed spec alone.

use oasis_attacks::{
    ActiveAttack, AtsDefense, CahAttack, LinearModelAttack, RtfAttack, DEFAULT_ACTIVATION_TARGET,
};
use oasis_augment::PolicyKind;
use oasis_data::{synthetic_dataset, Dataset};
use oasis_fl::{BatchPreprocessor, IdentityPreprocessor};
use oasis_image::Image;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::{Scale, ScenarioError};

/// Weight seed used when constructing CAH trap weights from a spec.
///
/// The figure binaries historically used this constant; keeping it in
/// the registry makes `cah:N` specs reproduce those numbers.
pub const CAH_WEIGHT_SEED: u64 = 0xCA11;

/// An active reconstruction attack, as a value.
///
/// Spec grammar (round-tripping through `Display`):
///
/// * `rtf:N` — Robbing the Fed with `N` attacked neurons,
/// * `cah:N` — Curious Abandon Honesty with `N` trap neurons at the
///   default activation target, or `cah:N,G` for target `G`,
/// * `linear` — gradient inversion on a single-layer softmax model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// Robbing the Fed (Fowl et al.).
    Rtf {
        /// Attacked (imprint) neurons `n`.
        neurons: usize,
    },
    /// Curious Abandon Honesty (Boenisch et al.).
    Cah {
        /// Trap neurons `n`.
        neurons: usize,
        /// Target activation probability γ.
        gamma: f64,
    },
    /// Single-layer softmax gradient inversion (paper §IV-D).
    Linear,
}

impl AttackSpec {
    /// An RTF spec.
    pub fn rtf(neurons: usize) -> Self {
        AttackSpec::Rtf { neurons }
    }

    /// A CAH spec at the default activation target.
    pub fn cah(neurons: usize) -> Self {
        AttackSpec::Cah {
            neurons,
            gamma: DEFAULT_ACTIVATION_TARGET,
        }
    }

    /// Short family name ("rtf", "cah", "linear").
    pub fn family(&self) -> &'static str {
        match self {
            AttackSpec::Rtf { .. } => "rtf",
            AttackSpec::Cah { .. } => "cah",
            AttackSpec::Linear => "linear",
        }
    }

    /// The same spec with a different neuron count (no-op for
    /// `linear`, which has no neuron knob) — how grid sweeps vary one
    /// axis of an attack.
    pub fn with_neurons(&self, neurons: usize) -> Self {
        match *self {
            AttackSpec::Rtf { .. } => AttackSpec::Rtf { neurons },
            AttackSpec::Cah { gamma, .. } => AttackSpec::Cah { neurons, gamma },
            AttackSpec::Linear => AttackSpec::Linear,
        }
    }

    /// How many calibration images the attack wants for its
    /// measurement statistics (0 = needs none).
    pub fn default_calibration(&self) -> usize {
        match self {
            AttackSpec::Rtf { .. } => 256,
            AttackSpec::Cah { .. } => 384,
            AttackSpec::Linear => 0,
        }
    }

    /// Constructs the attack behind this spec.
    ///
    /// `calibration` holds the public images the dishonest server fits
    /// its measurement statistics on; `classes` is the label-space
    /// size of the attacked workload (used by `linear`).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (e.g. empty calibration for a
    /// calibrated attack).
    pub fn build(
        &self,
        calibration: &[Image],
        classes: usize,
    ) -> Result<Box<dyn ActiveAttack>, ScenarioError> {
        match *self {
            AttackSpec::Rtf { neurons } => {
                let attack = RtfAttack::calibrated(neurons, calibration)?;
                Ok(Box::new(attack))
            }
            AttackSpec::Cah { neurons, gamma } => {
                let attack = CahAttack::calibrated(neurons, gamma, calibration, CAH_WEIGHT_SEED)?;
                Ok(Box::new(attack))
            }
            AttackSpec::Linear => Ok(Box::new(LinearModelAttack::new(classes)?)),
        }
    }
}

impl fmt::Display for AttackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AttackSpec::Rtf { neurons } => write!(f, "rtf:{neurons}"),
            AttackSpec::Cah { neurons, gamma } => {
                if gamma == DEFAULT_ACTIVATION_TARGET {
                    write!(f, "cah:{neurons}")
                } else {
                    write!(f, "cah:{neurons},{gamma}")
                }
            }
            AttackSpec::Linear => write!(f, "linear"),
        }
    }
}

impl FromStr for AttackSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (family, args) = split_spec(s);
        match family {
            "rtf" => {
                let neurons = parse_field::<usize>("rtf", "neurons", args.ok_or_else(no_args)?)?;
                Ok(AttackSpec::Rtf { neurons })
            }
            "cah" => {
                let args = args.ok_or_else(no_args)?;
                let (neurons_str, gamma_str) = match args.split_once(',') {
                    Some((n, g)) => (n, Some(g)),
                    None => (args, None),
                };
                let neurons = parse_field::<usize>("cah", "neurons", neurons_str)?;
                let gamma = match gamma_str {
                    Some(g) => parse_field::<f64>("cah", "gamma", g)?,
                    None => DEFAULT_ACTIVATION_TARGET,
                };
                Ok(AttackSpec::Cah { neurons, gamma })
            }
            "linear" => {
                if args.is_some() {
                    return Err(ScenarioError::BadSpec("`linear` takes no arguments".into()));
                }
                Ok(AttackSpec::Linear)
            }
            other => Err(ScenarioError::BadSpec(format!(
                "unknown attack `{other}` (expected rtf:N, cah:N[,G], or linear)"
            ))),
        }
    }
}

impl Serialize for AttackSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for AttackSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("attack spec", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// A client-side defense (or its absence), as a value.
///
/// Spec grammar (round-tripping through `Display`):
///
/// * `none` — undefended baseline (also parses from `wo`, `without`),
/// * `oasis:P` — the OASIS defense with policy abbreviation `P`
///   (`MR`, `mR`, `SH`, `HFlip`, `VFlip`, `MR+SH`, `WO`),
/// * `ats` — ATSPrivacy-style transform *replacement* baseline,
/// * `dp:C,S` — DP-SGD with clip norm `C` and noise multiplier `S`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefenseSpec {
    /// No defense.
    None,
    /// OASIS augmentation with the given policy.
    Oasis(PolicyKind),
    /// ATSPrivacy-style transform replacement (Gao et al.).
    Ats,
    /// DP-SGD noisy updates.
    Dp {
        /// Per-sample gradient clip norm.
        clip: f32,
        /// Noise multiplier σ.
        noise: f32,
    },
}

impl DefenseSpec {
    /// The `BatchPreprocessor` the client runs under this defense.
    ///
    /// DP-SGD does not preprocess the batch (it perturbs the update),
    /// so `dp:` specs build the identity preprocessor and expose their
    /// parameters via [`DefenseSpec::dp_params`].
    pub fn build(&self) -> Box<dyn BatchPreprocessor> {
        match *self {
            DefenseSpec::None => Box::new(IdentityPreprocessor),
            DefenseSpec::Oasis(kind) => {
                Box::new(oasis::Oasis::new(oasis::OasisConfig::policy(kind)))
            }
            DefenseSpec::Ats => Box::new(AtsDefense::searched()),
            DefenseSpec::Dp { .. } => Box::new(IdentityPreprocessor),
        }
    }

    /// `(clip_norm, noise_multiplier)` when this defense is DP-SGD.
    pub fn dp_params(&self) -> Option<(f32, f32)> {
        match *self {
            DefenseSpec::Dp { clip, noise } => Some((clip, noise)),
            _ => None,
        }
    }
}

impl fmt::Display for DefenseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DefenseSpec::None => write!(f, "none"),
            DefenseSpec::Oasis(kind) => write!(f, "oasis:{}", kind.abbrev()),
            DefenseSpec::Ats => write!(f, "ats"),
            DefenseSpec::Dp { clip, noise } => write!(f, "dp:{clip},{noise}"),
        }
    }
}

impl FromStr for DefenseSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (family, args) = split_spec(s);
        match family {
            "none" | "wo" | "without" => Ok(DefenseSpec::None),
            "oasis" => {
                let policy = args.ok_or_else(no_args)?;
                let kind = policy
                    .parse::<PolicyKind>()
                    .map_err(|e| ScenarioError::BadSpec(e.to_string()))?;
                Ok(DefenseSpec::Oasis(kind))
            }
            "ats" => Ok(DefenseSpec::Ats),
            "dp" => {
                let args = args.ok_or_else(no_args)?;
                let (clip_str, noise_str) = args.split_once(',').ok_or_else(|| {
                    ScenarioError::BadSpec("dp spec needs `dp:CLIP,NOISE`".into())
                })?;
                Ok(DefenseSpec::Dp {
                    clip: parse_field::<f32>("dp", "clip", clip_str)?,
                    noise: parse_field::<f32>("dp", "noise", noise_str)?,
                })
            }
            other => Err(ScenarioError::BadSpec(format!(
                "unknown defense `{other}` (expected none, oasis:P, ats, or dp:C,S)"
            ))),
        }
    }
}

impl Serialize for DefenseSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for DefenseSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("defense spec", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// An evaluation workload, as a value.
///
/// Spec grammar: `imagenette`, `cifar100`, plus the 100-class
/// synthetic variants `imagenette100c` / `cifar100c` used by the
/// linear-model experiment, whose batches need ≥ 64 unique labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The ImageNet (Imagenette subset) stand-in, 10 classes.
    ImageNette,
    /// The CIFAR100 stand-in, 100 classes.
    Cifar100,
    /// 100-class synthetic workload at ImageNette resolution.
    ImageNette100c,
    /// 100-class synthetic workload at CIFAR resolution.
    Cifar100c,
}

impl WorkloadSpec {
    /// Display name matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::ImageNette => "ImageNet (ImageNette-like)",
            WorkloadSpec::Cifar100 => "CIFAR100 (CIFAR100-like)",
            WorkloadSpec::ImageNette100c => "ImageNet-like (100-class synthetic)",
            WorkloadSpec::Cifar100c => "CIFAR100-like (100-class synthetic)",
        }
    }

    /// Number of classes in the workload's label space.
    pub fn num_classes(&self) -> usize {
        match self {
            WorkloadSpec::ImageNette => 10,
            WorkloadSpec::Cifar100 | WorkloadSpec::ImageNette100c | WorkloadSpec::Cifar100c => 100,
        }
    }

    /// Image side at the given scale.
    pub fn side(&self, scale: Scale) -> usize {
        match self {
            WorkloadSpec::ImageNette | WorkloadSpec::ImageNette100c => scale.imagenette_side(),
            WorkloadSpec::Cifar100 | WorkloadSpec::Cifar100c => scale.cifar_side(),
        }
    }

    /// Builds the dataset at the given scale with enough samples for
    /// batches up to `max_batch`.
    pub fn dataset(&self, scale: Scale, max_batch: usize, seed: u64) -> Dataset {
        match self {
            WorkloadSpec::ImageNette => {
                let spc = (max_batch * 2).div_ceil(10).max(8);
                oasis_data::imagenette_like_with(spc, scale.imagenette_side(), seed)
            }
            WorkloadSpec::Cifar100 => {
                let spc = (max_batch * 2).div_ceil(100).max(2);
                oasis_data::cifar100_like_at(spc, scale.cifar_side(), seed)
            }
            WorkloadSpec::ImageNette100c => synthetic_dataset(
                "ImageNet-like-100c",
                100,
                (max_batch * 2).div_ceil(100).max(2),
                scale.imagenette_side(),
                seed,
            ),
            WorkloadSpec::Cifar100c => synthetic_dataset(
                "CIFAR100-like",
                100,
                (max_batch * 2).div_ceil(100).max(2),
                scale.cifar_side(),
                seed,
            ),
        }
    }

    /// The 100-class variant of this workload at its resolution — the
    /// label space the linear-model inversion needs (paper §IV-D).
    pub fn linear_variant(&self) -> WorkloadSpec {
        match self {
            WorkloadSpec::ImageNette | WorkloadSpec::ImageNette100c => WorkloadSpec::ImageNette100c,
            WorkloadSpec::Cifar100 | WorkloadSpec::Cifar100c => WorkloadSpec::Cifar100c,
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadSpec::ImageNette => "imagenette",
            WorkloadSpec::Cifar100 => "cifar100",
            WorkloadSpec::ImageNette100c => "imagenette100c",
            WorkloadSpec::Cifar100c => "cifar100c",
        };
        f.write_str(name)
    }
}

impl FromStr for WorkloadSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "imagenette" | "imagenet" => Ok(WorkloadSpec::ImageNette),
            "cifar100" | "cifar" => Ok(WorkloadSpec::Cifar100),
            "imagenette100c" => Ok(WorkloadSpec::ImageNette100c),
            "cifar100c" => Ok(WorkloadSpec::Cifar100c),
            other => Err(ScenarioError::BadSpec(format!(
                "unknown workload `{other}` (expected imagenette, cifar100, imagenette100c, or cifar100c)"
            ))),
        }
    }
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("workload spec", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// Splits `family:args` into its two halves.
fn split_spec(s: &str) -> (&str, Option<&str>) {
    match s.split_once(':') {
        Some((family, args)) => (family, Some(args)),
        None => (s, None),
    }
}

fn no_args() -> ScenarioError {
    ScenarioError::BadSpec("missing `:` arguments".into())
}

fn parse_field<T: FromStr>(family: &str, field: &str, value: &str) -> Result<T, ScenarioError> {
    value
        .trim()
        .parse()
        .map_err(|_| ScenarioError::BadSpec(format!("bad {field} `{value}` in `{family}:` spec")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_specs_round_trip() {
        for spec in [
            AttackSpec::rtf(512),
            AttackSpec::cah(700),
            AttackSpec::Cah {
                neurons: 64,
                gamma: 0.004,
            },
            AttackSpec::Linear,
        ] {
            assert_eq!(spec.to_string().parse::<AttackSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn defense_specs_round_trip() {
        let mut specs = vec![
            DefenseSpec::None,
            DefenseSpec::Ats,
            DefenseSpec::Dp {
                clip: 1.0,
                noise: 0.5,
            },
        ];
        specs.extend(PolicyKind::all().map(DefenseSpec::Oasis));
        for spec in specs {
            assert_eq!(spec.to_string().parse::<DefenseSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn workload_specs_round_trip() {
        for spec in [
            WorkloadSpec::ImageNette,
            WorkloadSpec::Cifar100,
            WorkloadSpec::ImageNette100c,
            WorkloadSpec::Cifar100c,
        ] {
            assert_eq!(spec.to_string().parse::<WorkloadSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in ["rtf", "rtf:abc", "cah:12,xyz", "linear:3", "warp:9"] {
            assert!(
                bad.parse::<AttackSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
        for bad in ["oasis", "oasis:XX", "dp:1", "dp:a,b", "dropout"] {
            assert!(
                bad.parse::<DefenseSpec>().is_err(),
                "`{bad}` should not parse"
            );
        }
        assert!("mnist".parse::<WorkloadSpec>().is_err());
    }

    #[test]
    fn default_gamma_is_elided() {
        assert_eq!(AttackSpec::cah(700).to_string(), "cah:700");
        let custom = AttackSpec::Cah {
            neurons: 700,
            gamma: 0.25,
        };
        assert!(custom.to_string().starts_with("cah:700,"));
    }

    #[test]
    fn with_neurons_varies_only_that_axis() {
        assert_eq!(AttackSpec::rtf(100).with_neurons(900), AttackSpec::rtf(900));
        let cah = AttackSpec::Cah {
            neurons: 100,
            gamma: 0.1,
        };
        assert_eq!(
            cah.with_neurons(300),
            AttackSpec::Cah {
                neurons: 300,
                gamma: 0.1
            }
        );
        assert_eq!(AttackSpec::Linear.with_neurons(5), AttackSpec::Linear);
    }

    #[test]
    fn workload_datasets_have_expected_classes() {
        assert_eq!(
            WorkloadSpec::ImageNette
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            10
        );
        assert_eq!(
            WorkloadSpec::Cifar100
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            100
        );
        assert_eq!(
            WorkloadSpec::ImageNette100c
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            100
        );
        assert_eq!(
            WorkloadSpec::Cifar100c
                .dataset(Scale::Quick, 8, 1)
                .num_classes(),
            100
        );
    }

    #[test]
    fn linear_variant_is_idempotent_and_100_class() {
        for w in [WorkloadSpec::ImageNette, WorkloadSpec::Cifar100] {
            let lv = w.linear_variant();
            assert_eq!(lv, lv.linear_variant());
            assert_eq!(lv.dataset(Scale::Quick, 64, 0).num_classes(), 100);
        }
    }

    #[test]
    fn dp_defense_exposes_params_and_identity_preprocessor() {
        let dp = DefenseSpec::Dp {
            clip: 2.0,
            noise: 0.1,
        };
        assert_eq!(dp.dp_params(), Some((2.0, 0.1)));
        assert_eq!(DefenseSpec::None.dp_params(), None);
        assert_eq!(dp.build().name(), IdentityPreprocessor.name());
    }
}
