//! Experiment scale: one knob shrinking every grid and resolution
//! from the paper's full evaluation down to a seconds-scale smoke
//! test.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::ScenarioError;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-scale smoke test.
    Quick,
    /// Minutes-scale default preserving the paper's shape.
    #[default]
    Default,
    /// The paper's full grids (slow on CPU).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from the process arguments,
    /// reporting any other `--flag` on stderr instead of silently
    /// ignoring it (binaries with richer flag sets parse explicitly
    /// and resolve the scale via [`Scale::from_flags`]).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().skip(1).collect();
        for arg in &args {
            if arg.starts_with("--") && arg != "--quick" && arg != "--full" {
                eprintln!(
                    "warning: unknown flag `{arg}` ignored (this binary accepts --quick / --full)"
                );
            }
        }
        Scale::from_flags(&args)
    }

    /// Resolves the scale from pre-collected flags. `--quick` wins
    /// when both flags are present (the historical behavior: the
    /// smoke-test scale is never silently escalated).
    pub fn from_flags(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Batch sizes of the Figure 3/4 grid at this scale.
    pub fn grid_batches(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![8, 32],
            Scale::Default => vec![8, 16, 32, 64, 128, 256],
            Scale::Full => vec![8, 16, 32, 64, 96, 128, 160, 192, 224, 256],
        }
    }

    /// Attacked-neuron counts of the Figure 3/4 grid at this scale.
    pub fn grid_neurons(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![100, 400],
            Scale::Default => vec![100, 300, 500, 700, 900],
            Scale::Full => vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
        }
    }

    /// Number of independent batches averaged per configuration.
    pub fn trials(&self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Default => 2,
            Scale::Full => 3,
        }
    }

    /// Image side for the ImageNet stand-in at this scale.
    pub fn imagenette_side(&self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Default => 32,
            Scale::Full => 64,
        }
    }

    /// Image side for the CIFAR100 stand-in at this scale.
    pub fn cifar_side(&self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Default => 16,
            Scale::Full => 32,
        }
    }

    /// Caps a paper neuron count to what this scale's resolution
    /// supports (the figure binaries historically capped at quick
    /// scale to keep the smoke test in seconds).
    pub fn cap_neurons(&self, neurons: usize, cap_at_quick: usize) -> usize {
        match self {
            Scale::Quick => neurons.min(cap_at_quick),
            _ => neurons,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        };
        f.write_str(name)
    }
}

impl FromStr for Scale {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Ok(Scale::Quick),
            "default" => Ok(Scale::Default),
            "full" => Ok(Scale::Full),
            other => Err(ScenarioError::BadSpec(format!(
                "unknown scale `{other}` (expected quick, default, or full)"
            ))),
        }
    }
}

impl Serialize for Scale {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for Scale {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("scale", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_monotone_grids() {
        assert!(Scale::Quick.grid_batches().len() < Scale::Full.grid_batches().len());
        assert!(Scale::Quick.grid_neurons().len() < Scale::Full.grid_neurons().len());
    }

    #[test]
    fn full_grid_matches_paper_axes() {
        assert_eq!(
            Scale::Full.grid_batches(),
            vec![8, 16, 32, 64, 96, 128, 160, 192, 224, 256]
        );
        assert_eq!(
            Scale::Full.grid_neurons(),
            vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
        );
    }

    #[test]
    fn scale_round_trips() {
        for scale in [Scale::Quick, Scale::Default, Scale::Full] {
            assert_eq!(scale.to_string().parse::<Scale>().unwrap(), scale);
        }
        assert!("warp".parse::<Scale>().is_err());
    }

    #[test]
    fn flags_resolve_scale() {
        let quick = vec!["--quick".to_string()];
        let full = vec!["--full".to_string()];
        assert_eq!(Scale::from_flags(&quick), Scale::Quick);
        assert_eq!(Scale::from_flags(&full), Scale::Full);
        assert_eq!(Scale::from_flags(&[]), Scale::Default);
    }

    #[test]
    fn quick_caps_neurons() {
        assert_eq!(Scale::Quick.cap_neurons(900, 200), 200);
        assert_eq!(Scale::Default.cap_neurons(900, 200), 900);
    }
}
