//! # oasis-scenario
//!
//! The declarative experiment engine of the OASIS reproduction:
//! **every attack × defense × workload experiment is a value**, not a
//! hand-wired binary.
//!
//! The paper's evaluation is a grid — {RTF, CAH, linear-model}
//! attacks × {undefended, OASIS policies, ATSPrivacy, DP-SGD}
//! defenses × {ImageNette-like, CIFAR100-like} workloads. This crate
//! names every cell with compact spec strings
//! ([`AttackSpec`] / [`DefenseSpec`] / [`WorkloadSpec`], all
//! round-tripping through `FromStr` ⇄ `Display`). Attack and defense
//! specs are string-keyed into the pluggable family
//! [`registry`]; defenses **stack** with `+`
//! (`oasis:MR+dp:1,0.01` builds one [`oasis_fl::DefenseStack`]
//! applying the OASIS batch stage then DP-SGD's update stage). The
//! engine assembles a cell
//! with [`Scenario::builder`], executes trials in parallel, and
//! returns a [`ScenarioReport`] carrying per-trial matched PSNRs,
//! leak rates, wall clock, and the full provenance needed to
//! reproduce the numbers — serializable to JSON under `out/`.
//!
//! ```
//! use oasis_scenario::{Scale, Scenario};
//!
//! let report = Scenario::builder()
//!     .attack("rtf:64".parse().unwrap())
//!     .defense("oasis:MR".parse().unwrap())
//!     .workload("cifar100".parse().unwrap())
//!     .batch_size(4)
//!     .trials(1)
//!     .scale(Scale::Quick)
//!     .seed(1)
//!     .calibration(32)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! println!("{report}");
//! assert!(report.summary.count > 0);
//! ```
//!
//! The `scenario` binary in `oasis-bench` exposes the same engine on
//! the command line, including sweeps over comma-separated spec
//! lists; the `figN_*` binaries are thin loops over this API.

#![warn(missing_docs)]

pub mod registry;
mod scale;
mod scenario;
mod spec;

pub use registry::{
    register_attack_family, register_defense_family, spec_catalog, AttackFamily, DefenseFamily,
    CAH_WEIGHT_SEED, QBI_WEIGHT_SEED,
};
pub use scale::Scale;
pub use scenario::{Sampling, Scenario, ScenarioBuilder, ScenarioReport, TrialReport};
pub use spec::{AttackSpec, DefenseSpec, WorkloadSpec};

// The wire dimensions of a scenario — re-exported so spec consumers
// need only this crate.
pub use oasis_wire::{CodecSpec, NetSpec};

// The population dimensions — same story.
pub use oasis_population::{PopulationSpec, SampleSpec};

use std::fmt;
use std::path::PathBuf;

/// Errors produced while parsing specs or executing scenarios.
#[derive(Debug)]
pub enum ScenarioError {
    /// A spec string or scenario configuration was invalid.
    BadSpec(String),
    /// An attacked round failed.
    Attack(oasis_attacks::AttackError),
    /// The wire layer rejected a codec or net configuration.
    Wire(oasis_wire::WireError),
    /// Writing an artifact failed.
    Io(std::io::Error),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadSpec(msg) => write!(f, "bad scenario spec: {msg}"),
            ScenarioError::Attack(e) => write!(f, "attack execution failed: {e}"),
            ScenarioError::Wire(e) => write!(f, "wire layer failed: {e}"),
            ScenarioError::Io(e) => write!(f, "artifact I/O failed: {e}"),
        }
    }
}

impl From<oasis_attacks::AttackError> for ScenarioError {
    fn from(e: oasis_attacks::AttackError) -> Self {
        ScenarioError::Attack(e)
    }
}

impl From<oasis_wire::WireError> for ScenarioError {
    fn from(e: oasis_wire::WireError) -> Self {
        ScenarioError::Wire(e)
    }
}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::BadSpec(_) => None,
            ScenarioError::Attack(e) => Some(e),
            ScenarioError::Wire(e) => Some(e),
            ScenarioError::Io(e) => Some(e),
        }
    }
}

/// Returns `<artifact dir>/name`, creating the directory if needed.
///
/// The artifact directory is `out/` by default; set the
/// `OASIS_OUT_DIR` environment variable to redirect artifacts (CI,
/// parallel sweeps).
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_path(name: &str) -> PathBuf {
    let dir = std::env::var_os("OASIS_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("out"));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("create artifact dir {}: {e}", dir.display()));
    dir.join(name)
}
