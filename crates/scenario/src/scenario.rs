//! The scenario engine: one declarative value describing an
//! attack × defense × workload experiment, a parallel runner, and a
//! serializable report.

use oasis_attacks::{run_attack_over_wire, AttackOutcome};
use oasis_data::{Batch, Dataset};
use oasis_image::Image;
use oasis_metrics::Summary;
use oasis_population::CohortScheduler;
use oasis_wire::{CodecSpec, NetSpec, Submission};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Instant;

use crate::{out_path, AttackSpec, DefenseSpec, Scale, ScenarioError, WorkloadSpec};

/// How trial batches are drawn from the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampling {
    /// Uniformly without replacement (the default).
    #[default]
    Uniform,
    /// One sample per sampled class — all labels distinct, the
    /// setting of the linear-model inversion (paper §IV-D).
    UniqueLabels,
}

impl fmt::Display for Sampling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sampling::Uniform => "uniform",
            Sampling::UniqueLabels => "unique-labels",
        })
    }
}

impl FromStr for Sampling {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" => Ok(Sampling::Uniform),
            "unique-labels" | "unique_labels" => Ok(Sampling::UniqueLabels),
            other => Err(ScenarioError::BadSpec(format!(
                "unknown sampling `{other}` (expected uniform or unique-labels)"
            ))),
        }
    }
}

impl Serialize for Sampling {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for Sampling {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("sampling", value))?;
        s.parse()
            .map_err(|e: ScenarioError| serde::Error::msg(e.to_string()))
    }
}

/// One fully specified experiment: every knob of an
/// attack × defense × workload cell, as a serializable value.
///
/// Build with [`Scenario::builder`], execute with [`Scenario::run`]:
///
/// ```
/// use oasis_scenario::{Scale, Scenario};
///
/// let report = Scenario::builder()
///     .workload("imagenette".parse().unwrap())
///     .attack("rtf:64".parse().unwrap())
///     .defense("oasis:MR".parse().unwrap())
///     .batch_size(4)
///     .trials(1)
///     .scale(Scale::Quick)
///     .seed(7)
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(report.trials.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The attack under evaluation.
    pub attack: AttackSpec,
    /// The client-side defense (or `none`).
    pub defense: DefenseSpec,
    /// The workload attacked.
    pub workload: WorkloadSpec,
    /// Client batch size `B`.
    pub batch_size: usize,
    /// Number of independent attacked rounds pooled.
    pub trials: usize,
    /// Resolution / grid scale.
    pub scale: Scale,
    /// Master seed: drives batch sampling; trial `i` attacks with
    /// seed `seed ^ i`.
    pub seed: u64,
    /// Seed of the workload dataset build (defaults to `seed`).
    pub dataset_seed: u64,
    /// Dataset is provisioned for batches up to this size (defaults
    /// to `batch_size`; grid figures share one dataset sized for
    /// their largest batch).
    pub dataset_capacity: usize,
    /// Number of calibration images the attacker fits its
    /// measurement statistics on.
    pub calibration: usize,
    /// How trial batches are drawn.
    pub sampling: Sampling,
    /// PSNR threshold (dB) above which a sample counts as leaked.
    pub leak_threshold_db: f64,
    /// Update codec the victim's upload crosses (default `raw`, which
    /// reproduces the in-process numbers bit-exactly).
    #[serde(default)]
    pub codec: CodecSpec,
    /// Simulated network between the victim and the dishonest server
    /// (default `ideal`: no latency, no loss).
    #[serde(default)]
    pub net: NetSpec,
    /// Deployment population the attacked rounds' cohorts are sampled
    /// from (`0` = the legacy single-victim wire: each trial puts
    /// exactly one submission on the network).
    #[serde(default)]
    pub population: usize,
    /// Cohort size `K` drawn per attacked round when `population > 0`
    /// — the victim is one member of a K-client round, and the wire
    /// carries all K uploads.
    #[serde(default)]
    pub sample: usize,
}

/// Seed of the calibration split — disjoint from every experiment
/// seed, mirroring the attacker's "coarse public statistics".
const CALIBRATION_SEED: u64 = 0xCA11B;

impl Scenario {
    /// Starts building a scenario (defaults: `rtf:512` vs `none` on
    /// `imagenette`, `B = 8`, scale-default trials, seed 0).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The one-line spec string `attack=… defense=… workload=… …`.
    ///
    /// Covers every axis that differs from its default (secondary
    /// axes like `dataset_seed` appear only when decoupled), so the
    /// printed line reproduces the run; the serialized
    /// [`ScenarioReport`] always carries the complete scenario.
    pub fn spec_string(&self) -> String {
        let mut s = format!(
            "attack={} defense={} workload={} batch={} trials={} scale={} seed={}",
            self.attack,
            self.defense,
            self.workload,
            self.batch_size,
            self.trials,
            self.scale,
            self.seed
        );
        if self.dataset_seed != self.seed {
            s.push_str(&format!(" dataset_seed={}", self.dataset_seed));
        }
        if self.dataset_capacity != self.batch_size {
            s.push_str(&format!(" dataset_capacity={}", self.dataset_capacity));
        }
        if self.calibration != self.attack.default_calibration() {
            s.push_str(&format!(" calibration={}", self.calibration));
        }
        let default_sampling = if self.attack.unique_labels_default() {
            Sampling::UniqueLabels
        } else {
            Sampling::Uniform
        };
        if self.sampling != default_sampling {
            s.push_str(&format!(" sampling={}", self.sampling));
        }
        if self.codec != CodecSpec::default() {
            s.push_str(&format!(" codec={}", self.codec));
        }
        if self.net != NetSpec::default() {
            s.push_str(&format!(" net={}", self.net));
        }
        if self.population > 0 {
            s.push_str(&format!(
                " population={} sample={}",
                self.population, self.sample
            ));
        }
        s
    }

    /// The trial batches this scenario draws — the same sequence
    /// [`Scenario::run`] attacks (trial `i` is element `i`). Visual
    /// figures use this to recover the original private images.
    pub fn trial_batches(&self) -> Vec<Batch> {
        self.trial_batches_from(&self.dataset())
    }

    fn trial_batches_from(&self, dataset: &Dataset) -> Vec<Batch> {
        let batch_size = self.batch_size.min(dataset.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.trials)
            .map(|_| match self.sampling {
                Sampling::Uniform => dataset.sample_batch(batch_size, &mut rng),
                Sampling::UniqueLabels => dataset.sample_batch_unique_labels(batch_size, &mut rng),
            })
            .collect()
    }

    /// Draws the calibration images the attacker is assumed to know.
    pub fn calibration_images(&self) -> Vec<Image> {
        if self.calibration == 0 {
            return Vec::new();
        }
        let ds = self
            .workload
            .dataset(self.scale, self.calibration, CALIBRATION_SEED);
        ds.items()
            .iter()
            .take(self.calibration)
            .map(|it| it.image.clone())
            .collect()
    }

    /// Builds the workload dataset this scenario attacks.
    pub fn dataset(&self) -> Dataset {
        self.workload
            .dataset(self.scale, self.dataset_capacity, self.dataset_seed)
    }

    /// Executes the scenario: all trial batches are drawn up front
    /// from the master seed, then attacked rounds fan out across the
    /// persistent worker pool via [`oasis_tensor::parallel`] (each
    /// trial's own matmuls run inline under the pool's nesting
    /// guard); results are bit-identical for a fixed scenario at any
    /// thread count.
    ///
    /// Every trial's update crosses the scenario's wire: it is
    /// encoded with the [`CodecSpec`] codec, carried by the
    /// [`NetSpec`] simulated network, and the attacker reconstructs
    /// from the decoded bytes — trials whose upload is lost or
    /// straggles contribute no reconstructions (and no leaks).
    ///
    /// # Errors
    ///
    /// Returns an error if the spec cannot be constructed (bad
    /// calibration, unique-label sampling without enough classes) or
    /// an attacked round fails.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        self.run_detailed().map(|(report, _)| report)
    }

    /// Like [`Scenario::run`], but also returns the raw
    /// [`AttackOutcome`] of every trial (reconstruction pools and
    /// processed batches) for visual figures.
    ///
    /// # Errors
    ///
    /// See [`Scenario::run`].
    pub fn run_detailed(&self) -> Result<(ScenarioReport, Vec<AttackOutcome>), ScenarioError> {
        let run_span = oasis_telemetry::span("scenario.run");
        let started = Instant::now();
        let setup_span = oasis_telemetry::span("scenario.setup");
        let dataset = self.dataset();
        let classes = dataset.num_classes();
        let calibration = self.calibration_images();
        let attack = self.attack.build(&calibration, classes)?;
        let defense = self.defense.build()?;
        let codec = self.codec.build();

        // Batches are drawn sequentially from one rng (so trial `i`
        // sees the same batch however many workers run), then the
        // expensive attacked rounds fan out across threads.
        let batches = self.trial_batches_from(&dataset);
        drop(setup_span);

        let outcomes: Vec<Result<(AttackOutcome, u64), ScenarioError>> =
            oasis_tensor::parallel::map_indexed(&batches, |i, batch| {
                let trial_span = oasis_telemetry::span("scenario.trial");
                let trial_seed = self.seed ^ i as u64;
                let outcome = run_attack_over_wire(
                    attack.as_ref(),
                    batch,
                    &defense,
                    classes,
                    trial_seed,
                    codec.as_ref(),
                )
                .map_err(ScenarioError::from);
                let trial_ns = trial_span.finish_ns();
                outcome.map(|o| (o, trial_ns))
            });
        oasis_telemetry::counter!("scenario.trials").add(outcomes.len() as u64);

        let mut trials = Vec::with_capacity(outcomes.len());
        let mut detailed = Vec::with_capacity(outcomes.len());
        let mut pooled = Vec::new();
        let mut bytes_on_wire = 0u64;
        let mut ratio_sum = 0.0f64;
        let mut cohort_delivered = 0usize;
        let mut scheduler = CohortScheduler::new(self.population);
        let mut trial_wall_ns = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let (outcome, trial_ns) = outcome?;
            if oasis_telemetry::enabled() {
                trial_wall_ns.push(trial_ns);
            }
            let trace = outcome
                .wire
                .clone()
                .expect("attacked rounds over a codec always record a wire trace");

            // Trial i is FL round i of the simulated deployment: does
            // this victim's upload actually reach the server?
            let traffic = if self.population > 0 {
                // Population mode: the victim shares round i with a
                // seeded K-cohort; the wire carries all K uploads
                // (every codec's size is value-independent, so the
                // peers' frames are byte-for-byte the victim's size)
                // and the victim is the cohort's first member.
                let mut rng = CohortScheduler::round_rng(self.seed, i as u64);
                let (cohort, round_seed) = scheduler.sample(self.sample, &mut rng);
                let submissions: Vec<Submission> = cohort
                    .iter()
                    .map(|&id| Submission {
                        client_id: id as usize,
                        bytes_up: trace.encoded_bytes,
                        bytes_down: trace.broadcast_bytes,
                    })
                    .collect();
                self.net.deliver(round_seed, i as u64, &submissions)
            } else {
                self.net.deliver(
                    self.seed,
                    i as u64,
                    &[Submission {
                        client_id: i,
                        bytes_up: trace.encoded_bytes,
                        bytes_down: trace.broadcast_bytes,
                    }],
                )
            };
            let delivered = traffic.deliveries[0].status == oasis_wire::DeliveryStatus::Delivered;
            cohort_delivered += traffic.delivered;
            bytes_on_wire += traffic.bytes_up;
            ratio_sum += trace.compression_ratio();

            if delivered {
                pooled.extend_from_slice(&outcome.matched_psnrs);
            }
            trials.push(TrialReport {
                trial: i,
                attack_seed: self.seed ^ i as u64,
                matched_psnrs: if delivered {
                    outcome.matched_psnrs.clone()
                } else {
                    Vec::new()
                },
                mean_psnr: if delivered { outcome.mean_psnr() } else { 0.0 },
                leak_rate: if delivered {
                    outcome.leak_rate(self.leak_threshold_db)
                } else {
                    0.0
                },
                client_loss: outcome.client_loss,
                dropped: !delivered,
                bytes_on_wire: trace.encoded_bytes,
                sim_ms: traffic.round_ms,
            });
            detailed.push(outcome);
        }

        let summary = Summary::from_values(&pooled);
        let leak_rate = if trials.is_empty() {
            0.0
        } else {
            trials.iter().map(|t| t.leak_rate).sum::<f64>() / trials.len() as f64
        };
        let dropped_trials = trials.iter().filter(|t| t.dropped).count();
        let report = ScenarioReport {
            scenario: self.clone(),
            dropped_trials,
            cohort_delivered,
            bytes_on_wire,
            compression_ratio: if trials.is_empty() {
                1.0
            } else {
                ratio_sum / trials.len() as f64
            },
            trials,
            summary,
            leak_rate,
            trial_wall_ns,
            wall_clock_ms: started.elapsed().as_secs_f64() * 1e3,
        };
        drop(run_span);
        Ok((report, detailed))
    }
}

/// Fluent constructor for [`Scenario`] (see [`Scenario::builder`]).
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    attack: Option<AttackSpec>,
    defense: Option<DefenseSpec>,
    workload: Option<WorkloadSpec>,
    batch_size: Option<usize>,
    trials: Option<usize>,
    scale: Scale,
    seed: u64,
    dataset_seed: Option<u64>,
    dataset_capacity: Option<usize>,
    calibration: Option<usize>,
    sampling: Option<Sampling>,
    leak_threshold_db: Option<f64>,
    codec: CodecSpec,
    net: NetSpec,
    population: usize,
    sample: usize,
}

impl ScenarioBuilder {
    /// Sets the attack (default `rtf:512`).
    pub fn attack(mut self, attack: AttackSpec) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Sets the defense (default `none`).
    pub fn defense(mut self, defense: DefenseSpec) -> Self {
        self.defense = Some(defense);
        self
    }

    /// Sets the workload (default `imagenette`).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the client batch size `B` (default 8).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Sets the trial count (default: the scale's trial count).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = Some(trials);
        self
    }

    /// Sets the scale (default [`Scale::Default`]).
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Decouples the dataset seed from the master seed.
    pub fn dataset_seed(mut self, dataset_seed: u64) -> Self {
        self.dataset_seed = Some(dataset_seed);
        self
    }

    /// Provisions the dataset for batches up to `max_batch` (grid
    /// figures share one dataset across their batch axis).
    pub fn dataset_capacity(mut self, max_batch: usize) -> Self {
        self.dataset_capacity = Some(max_batch);
        self
    }

    /// Overrides the calibration-image count (default: the attack's
    /// [`AttackSpec::default_calibration`]).
    pub fn calibration(mut self, images: usize) -> Self {
        self.calibration = Some(images);
        self
    }

    /// Overrides batch sampling (default: unique labels for `linear`,
    /// uniform otherwise).
    pub fn sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = Some(sampling);
        self
    }

    /// Sets the leak-rate PSNR threshold in dB (default 60).
    pub fn leak_threshold_db(mut self, threshold: f64) -> Self {
        self.leak_threshold_db = Some(threshold);
        self
    }

    /// Sets the update codec the victim's upload crosses (default
    /// `raw`).
    pub fn codec(mut self, codec: CodecSpec) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the simulated network condition (default `ideal`).
    pub fn net(mut self, net: NetSpec) -> Self {
        self.net = net;
        self
    }

    /// Samples each attacked round's cohort from a deployment of
    /// `clients` (default 0: the legacy single-victim wire).
    pub fn population(mut self, clients: usize) -> Self {
        self.population = clients;
        self
    }

    /// Sets the per-round cohort size `K` (default when a population
    /// is set: `min(population, 64)`).
    pub fn sample(mut self, cohort: usize) -> Self {
        self.sample = cohort;
        self
    }

    /// Validates and assembles the scenario.
    ///
    /// # Errors
    ///
    /// Rejects zero batch sizes / trial counts and unique-label
    /// sampling on workloads with fewer classes than the batch size
    /// (the linear attack needs one class per sample — use the
    /// `imagenette100c` / `cifar100c` workloads).
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let attack = self.attack.unwrap_or_else(|| AttackSpec::rtf(512));
        let workload = self.workload.unwrap_or(WorkloadSpec::ImageNette);
        let batch_size = self.batch_size.unwrap_or(8);
        let sampling = self.sampling.unwrap_or(if attack.unique_labels_default() {
            Sampling::UniqueLabels
        } else {
            Sampling::Uniform
        });
        if batch_size == 0 {
            return Err(ScenarioError::BadSpec("batch size must be positive".into()));
        }
        let trials = self.trials.unwrap_or_else(|| self.scale.trials());
        if trials == 0 {
            return Err(ScenarioError::BadSpec(
                "trial count must be positive".into(),
            ));
        }
        if sampling == Sampling::UniqueLabels {
            let classes = workload.num_classes();
            if classes < batch_size {
                return Err(ScenarioError::BadSpec(format!(
                    "unique-label batches of {batch_size} need ≥ {batch_size} classes but \
                     workload `{workload}` has {classes}; use `{}`",
                    workload.linear_variant()
                )));
            }
        }
        let calibration = self
            .calibration
            .unwrap_or_else(|| attack.default_calibration());
        if self.population == 0 && self.sample > 0 {
            return Err(ScenarioError::BadSpec(
                "sample:K needs a population:N to sample from".into(),
            ));
        }
        let sample = if self.population > 0 && self.sample == 0 {
            self.population.min(64)
        } else {
            self.sample
        };
        if sample > self.population {
            return Err(ScenarioError::BadSpec(format!(
                "cohort sample:{sample} exceeds population:{}",
                self.population
            )));
        }
        Ok(Scenario {
            attack,
            defense: self.defense.unwrap_or_else(DefenseSpec::none),
            workload,
            batch_size,
            trials,
            scale: self.scale,
            seed: self.seed,
            dataset_seed: self.dataset_seed.unwrap_or(self.seed),
            dataset_capacity: self.dataset_capacity.unwrap_or(batch_size).max(batch_size),
            calibration,
            sampling,
            leak_threshold_db: self.leak_threshold_db.unwrap_or(60.0),
            codec: self.codec,
            net: self.net,
            population: self.population,
            sample,
        })
    }
}

/// One attacked round's scored result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialReport {
    /// Trial index.
    pub trial: usize,
    /// Seed the attacked round ran with.
    pub attack_seed: u64,
    /// PSNR of every matched reconstruction↔original pair (dB).
    pub matched_psnrs: Vec<f64>,
    /// Mean matched PSNR (dB).
    pub mean_psnr: f64,
    /// Fraction of originals leaked above the scenario threshold.
    pub leak_rate: f64,
    /// The client's training loss during the attacked round.
    pub client_loss: f32,
    /// Whether the victim's upload was lost or cut off (dropped
    /// trials contribute no reconstructions). Inverted so that
    /// pre-wire artifacts, where the field is absent, correctly read
    /// back as delivered.
    #[serde(default)]
    pub dropped: bool,
    /// Encoded update bytes this trial put on the wire.
    #[serde(default)]
    pub bytes_on_wire: usize,
    /// Simulated round wall-clock in milliseconds (0 on `ideal`).
    #[serde(default)]
    pub sim_ms: f64,
}

/// Everything one scenario execution produced, with full provenance:
/// serializing the report records the exact [`Scenario`] that made it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// The scenario that produced these numbers.
    pub scenario: Scenario,
    /// Per-trial results.
    pub trials: Vec<TrialReport>,
    /// Summary over the delivered trials' matched PSNRs (the paper's
    /// boxplots).
    pub summary: Summary,
    /// Mean per-trial leak rate at the scenario threshold (lost
    /// trials leak nothing and count as 0).
    pub leak_rate: f64,
    /// Trials whose upload was lost or cut off (0 for pre-wire
    /// artifacts, which predate loss — see
    /// [`ScenarioReport::delivered_trials`]).
    #[serde(default)]
    pub dropped_trials: usize,
    /// Cohort updates delivered across all attacked rounds. In
    /// population mode each round carries `scenario.sample` uploads;
    /// on the legacy single-victim wire this equals
    /// [`ScenarioReport::delivered_trials`] (0 for pre-population
    /// artifacts).
    #[serde(default)]
    pub cohort_delivered: usize,
    /// Total encoded update bytes across all trials.
    #[serde(default)]
    pub bytes_on_wire: u64,
    /// Mean `raw / encoded` ratio of the scenario's codec (> 1 means
    /// the updates were compressed; 0 marks a pre-wire artifact that
    /// recorded no ratio).
    #[serde(default)]
    pub compression_ratio: f64,
    /// Per-trial wall-clock in nanoseconds, recorded only while
    /// telemetry is enabled (see `oasis-telemetry`). Empty on
    /// untraced runs and on pre-telemetry artifacts, so the
    /// determinism-relevant fields above stay byte-identical whether
    /// tracing is on or off.
    #[serde(default)]
    pub trial_wall_ns: Vec<u64>,
    /// Wall-clock of the run in milliseconds.
    pub wall_clock_ms: f64,
}

impl ScenarioReport {
    /// Trials whose upload reached the server. Derived (rather than
    /// stored) so pre-wire artifacts, which carry no delivery fields,
    /// read back as fully delivered.
    pub fn delivered_trials(&self) -> usize {
        self.trials.len() - self.dropped_trials
    }

    /// All matched PSNRs pooled across trials.
    pub fn pooled_psnrs(&self) -> Vec<f64> {
        self.trials
            .iter()
            .flat_map(|t| t.matched_psnrs.iter().copied())
            .collect()
    }

    /// Mean matched PSNR — the single number of the grid figures.
    pub fn mean_psnr(&self) -> f64 {
        self.summary.mean
    }

    /// The canonical artifact filename for this report. Seeds and
    /// trial count are part of the name so seed sweeps over one cell
    /// do not overwrite each other.
    pub fn file_name(&self) -> String {
        let s = &self.scenario;
        let mut raw = format!(
            "scenario_{}_{}_{}_b{}_{}_t{}_s{}",
            s.attack, s.defense, s.workload, s.batch_size, s.scale, s.trials, s.seed
        );
        if s.dataset_seed != s.seed {
            raw.push_str(&format!("_ds{}", s.dataset_seed));
        }
        if s.codec != CodecSpec::default() {
            raw.push_str(&format!("_c{}", s.codec));
        }
        if s.net != NetSpec::default() {
            raw.push_str(&format!("_n{}", s.net));
        }
        if s.population > 0 {
            raw.push_str(&format!("_p{}_k{}", s.population, s.sample));
        }
        raw.push_str(".json");
        raw.chars()
            .map(|c| match c {
                ':' | ',' | '+' => '-',
                c => c,
            })
            .collect()
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Writes the report under the artifact directory (`out/`, or
    /// `$OASIS_OUT_DIR` when set) and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self) -> Result<PathBuf, ScenarioError> {
        let path = out_path(&self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.scenario.spec_string())?;
        writeln!(f, "  {}", self.summary)?;
        write!(
            f,
            "  leak rate: {:.1} % (> {:.0} dB)   wall clock: {:.0} ms",
            self.leak_rate * 100.0,
            self.scenario.leak_threshold_db,
            self.wall_clock_ms
        )?;
        if self.scenario.codec != CodecSpec::default() || self.scenario.net != NetSpec::default() {
            write!(
                f,
                "\n  wire: codec={} ({:.1}x) net={}   {} B up   delivered {}/{}",
                self.scenario.codec,
                self.compression_ratio,
                self.scenario.net,
                self.bytes_on_wire,
                self.delivered_trials(),
                self.trials.len(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::builder()
            .workload(WorkloadSpec::Cifar100)
            .attack(AttackSpec::rtf(32))
            .defense(DefenseSpec::none())
            .batch_size(3)
            .trials(2)
            .scale(Scale::Quick)
            .seed(11)
            .calibration(32)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_fills_defaults() {
        let s = Scenario::builder().scale(Scale::Quick).build().unwrap();
        assert_eq!(s.attack, AttackSpec::rtf(512));
        assert_eq!(s.defense, DefenseSpec::none());
        assert_eq!(s.workload, WorkloadSpec::ImageNette);
        assert_eq!(s.trials, Scale::Quick.trials());
        assert_eq!(s.dataset_seed, s.seed);
        assert_eq!(s.calibration, 256);
        assert_eq!(s.sampling, Sampling::Uniform);
        assert_eq!(s.codec, CodecSpec::Raw);
        assert_eq!(s.net, NetSpec::Ideal);
    }

    #[test]
    fn raw_ideal_wire_reproduces_in_process_numbers_exactly() {
        // The acceptance bar: running through the full
        // encode → transport → decode path with the lossless codec and
        // the ideal network must yield the same PSNRs as calling the
        // attack harness in-process.
        let scenario = tiny();
        let report = scenario.run().unwrap();
        let attack = scenario
            .attack
            .build(&scenario.calibration_images(), 100)
            .unwrap();
        let defense = scenario.defense.build().unwrap();
        for (i, batch) in scenario.trial_batches().iter().enumerate() {
            let outcome = oasis_attacks::run_attack(
                attack.as_ref(),
                batch,
                &defense,
                100,
                scenario.seed ^ i as u64,
            )
            .unwrap();
            assert_eq!(report.trials[i].matched_psnrs, outcome.matched_psnrs);
        }
        assert_eq!(report.delivered_trials(), report.trials.len());
        assert_eq!(report.dropped_trials, 0);
        assert!(report.bytes_on_wire > 0);
        assert!(report.trials.iter().all(|t| !t.dropped && t.sim_ms == 0.0));
    }

    #[test]
    fn lossy_codec_degrades_reconstruction() {
        let clean = tiny().run().unwrap();
        let mut lossy_scenario = tiny();
        lossy_scenario.codec = CodecSpec::Sign;
        let lossy = lossy_scenario.run().unwrap();
        assert!(
            lossy.mean_psnr() < clean.mean_psnr(),
            "sign codec should degrade the attack: {} vs {}",
            lossy.mean_psnr(),
            clean.mean_psnr()
        );
        assert!(
            lossy.compression_ratio > 10.0,
            "{}",
            lossy.compression_ratio
        );
        assert!(lossy.bytes_on_wire < clean.bytes_on_wire);
    }

    #[test]
    fn lossy_net_drops_trials_and_their_leaks() {
        let mut scenario = tiny();
        scenario.trials = 8;
        scenario.net = "sim:10,100,0.6".parse().unwrap();
        let report = scenario.run().unwrap();
        assert_eq!(report.delivered_trials() + report.dropped_trials, 8);
        assert!(report.dropped_trials > 0, "p=0.6 over 8 trials");
        for t in &report.trials {
            assert!(t.bytes_on_wire > 0);
            if !t.dropped {
                assert!(t.sim_ms > 0.0, "delivered trials take simulated time");
            } else {
                assert!(t.matched_psnrs.is_empty());
                assert_eq!(t.leak_rate, 0.0);
            }
        }
        assert_eq!(
            report.summary.count,
            report
                .trials
                .iter()
                .filter(|t| !t.dropped)
                .map(|t| t.matched_psnrs.len())
                .sum::<usize>()
        );
    }

    #[test]
    fn population_mode_rides_the_same_attack_numbers() {
        // A population changes who shares the round, not what the
        // victim's update contains: on the ideal network the PSNRs
        // must match the legacy single-victim run exactly.
        let legacy = tiny().run().unwrap();
        let mut populated = tiny();
        populated.population = 10_000;
        populated.sample = 32;
        let report = populated.run().unwrap();
        for (a, b) in report.trials.iter().zip(&legacy.trials) {
            assert_eq!(a.matched_psnrs, b.matched_psnrs);
        }
        // Ideal wire: all 32 cohort uploads of both rounds arrive,
        // and the wire carries the whole cohort's bytes.
        assert_eq!(report.cohort_delivered, 32 * report.trials.len());
        assert_eq!(report.bytes_on_wire, 32 * legacy.bytes_on_wire);
        assert_eq!(legacy.cohort_delivered, legacy.trials.len());
    }

    #[test]
    fn population_mode_is_deterministic() {
        let mut scenario = tiny();
        scenario.population = 1000;
        scenario.sample = 16;
        scenario.net = "sim:10,100,0.4".parse().unwrap();
        let a = scenario.run().unwrap();
        let b = scenario.run().unwrap();
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.cohort_delivered, b.cohort_delivered);
        assert!(a.cohort_delivered < 16 * a.trials.len(), "40% loss");
        assert!(a.cohort_delivered > 0);
    }

    #[test]
    fn builder_validates_population_axes() {
        assert!(Scenario::builder().sample(8).build().is_err());
        assert!(Scenario::builder().population(4).sample(8).build().is_err());
        let defaulted = Scenario::builder().population(10_000).build().unwrap();
        assert_eq!(defaulted.sample, 64);
        let tiny_pop = Scenario::builder().population(3).build().unwrap();
        assert_eq!(tiny_pop.sample, 3);
        let explicit = Scenario::builder()
            .population(100)
            .sample(5)
            .build()
            .unwrap();
        assert_eq!(explicit.sample, 5);
        let legacy = Scenario::builder().build().unwrap();
        assert_eq!((legacy.population, legacy.sample), (0, 0));
    }

    #[test]
    fn population_axes_appear_in_spec_string_and_file_name() {
        let mut scenario = tiny();
        assert!(!scenario.spec_string().contains("population="));
        scenario.population = 100_000;
        scenario.sample = 64;
        let s = scenario.spec_string();
        assert!(s.contains("population=100000 sample=64"), "{s}");
        let report = scenario.run().unwrap();
        let name = report.file_name();
        assert!(name.contains("_p100000_k64"), "{name}");
        let json = report.to_json();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.scenario.population, 100_000);
    }

    #[test]
    fn linear_defaults_to_unique_labels() {
        let s = Scenario::builder()
            .attack(AttackSpec::linear())
            .workload(WorkloadSpec::Cifar100c)
            .batch_size(8)
            .build()
            .unwrap();
        assert_eq!(s.sampling, Sampling::UniqueLabels);
    }

    #[test]
    fn unique_labels_rejects_small_label_spaces() {
        let err = Scenario::builder()
            .attack(AttackSpec::linear())
            .workload(WorkloadSpec::ImageNette)
            .batch_size(64)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("imagenette100c"), "{err}");
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(Scenario::builder().batch_size(0).build().is_err());
        assert!(Scenario::builder().trials(0).build().is_err());
    }

    #[test]
    fn run_produces_per_trial_reports() {
        let report = tiny().run().unwrap();
        assert_eq!(report.trials.len(), 2);
        assert_eq!(report.summary.count, report.pooled_psnrs().len());
        assert!(report.trials.iter().all(|t| !t.matched_psnrs.is_empty()));
        assert!(report.wall_clock_ms >= 0.0);
    }

    #[test]
    fn undefended_rtf_leaks_on_quick_scale() {
        let report = tiny().run().unwrap();
        assert!(
            report.mean_psnr() > 60.0,
            "undefended quick-scale RTF should reconstruct: {}",
            report.summary
        );
    }

    #[test]
    fn defense_reduces_psnr() {
        let undefended = tiny().run().unwrap();
        let mut defended_scenario = tiny();
        defended_scenario.defense = DefenseSpec::oasis(oasis_augment::PolicyKind::MajorRotation);
        let defended = defended_scenario.run().unwrap();
        assert!(
            defended.mean_psnr() < undefended.mean_psnr(),
            "OASIS MR must reduce PSNR: {} vs {}",
            defended.mean_psnr(),
            undefended.mean_psnr()
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny().run().unwrap();
        let json = report.to_json();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn spec_string_names_every_axis() {
        let s = tiny().spec_string();
        for needle in [
            "attack=rtf:32",
            "defense=none",
            "workload=cifar100",
            "batch=3",
        ] {
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
        // Default wire axes are elided...
        assert!(!s.contains("codec="), "{s}");
        assert!(!s.contains("net="), "{s}");
        // ...and named once set.
        let mut wired = tiny();
        wired.codec = CodecSpec::TopK { k: 64 };
        wired.net = "sim:10,1,0.1".parse().unwrap();
        let s = wired.spec_string();
        assert!(s.contains("codec=topk:64"), "{s}");
        assert!(s.contains("net=sim:10,1,0.1"), "{s}");
    }

    #[test]
    fn file_name_has_no_spec_punctuation() {
        let mut scenario = tiny();
        scenario.codec = CodecSpec::TopK { k: 64 };
        scenario.net = "sim:10,1,0.1".parse().unwrap();
        let report = scenario.run().unwrap();
        let name = report.file_name();
        assert!(
            !name.contains(':') && !name.contains(',') && !name.contains('+'),
            "{name}"
        );
        assert!(name.contains("topk-64"), "{name}");
        assert!(name.ends_with(".json"));
        // Default-wire file names keep their pre-wire form so old
        // artifacts are overwritten in place, not duplicated.
        assert!(!tiny().run().unwrap().file_name().contains("_craw"));
    }
}
