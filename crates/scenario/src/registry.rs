//! The spec-family registry: the single place attack and defense
//! families are wired into the spec language.
//!
//! [`AttackSpec`](crate::AttackSpec) and
//! [`DefenseSpec`](crate::DefenseSpec) are string-keyed values —
//! `family[:args]` — and every operation on them (parsing,
//! canonicalization, construction, grid knobs) dispatches through the
//! [`AttackFamily`] / [`DefenseFamily`] registered under that key.
//! Adding a family is therefore one [`register_attack_family`] /
//! [`register_defense_family`] call — no `match` arms to edit across
//! the workspace — and `scenario --list-specs` enumerates whatever is
//! registered at runtime.
//!
//! The built-in families (`rtf`, `cah`, `qbi`, `linear`; `oasis`,
//! `ats`, `dp`, `clip`) are installed on first use.

use std::sync::{OnceLock, RwLock};

use oasis_attacks::{
    ActiveAttack, AtsDefense, CahAttack, LinearModelAttack, QbiAttack, RtfAttack,
    DEFAULT_ACTIVATION_TARGET, DEFAULT_QBI_BATCH,
};
use oasis_augment::PolicyKind;
use oasis_fl::{ClipStage, Defense, DpStage};
use oasis_image::Image;

use crate::ScenarioError;

/// Weight seed used when constructing CAH trap weights from a spec.
///
/// The figure binaries historically used this constant; keeping it in
/// the registry makes `cah:N` specs reproduce those numbers.
pub const CAH_WEIGHT_SEED: u64 = 0xCA11;

/// Weight seed used when constructing QBI Gaussian rows from a spec.
pub const QBI_WEIGHT_SEED: u64 = 0x0B1A;

/// Constructor signature of a registered attack family: canonical
/// args, calibration images, and the workload's class count.
pub type AttackBuilder =
    fn(Option<&str>, &[Image], usize) -> Result<Box<dyn ActiveAttack>, ScenarioError>;

/// Constructor signature of a registered defense family.
pub type DefenseBuilder = fn(Option<&str>) -> Result<Box<dyn Defense>, ScenarioError>;

/// One registered attack family: how to parse, build, and sweep specs
/// of the form `name[:args]`.
#[derive(Clone, Copy)]
pub struct AttackFamily {
    /// Registry key (the spec prefix before `:`).
    pub name: &'static str,
    /// One-line grammar shown by `scenario --list-specs`.
    pub grammar: &'static str,
    /// Validates raw args and returns their canonical form
    /// (`None` = the family takes no args).
    pub canon: fn(Option<&str>) -> Result<Option<String>, ScenarioError>,
    /// Constructs the attack from canonical args, calibration images,
    /// and the workload's class count.
    pub build: AttackBuilder,
    /// Default calibration-image count for canonical args.
    pub calibration: fn(Option<&str>) -> usize,
    /// Rewrites canonical args to use `neurons` attacked neurons, or
    /// `None` when the family has no neuron knob (grid sweeps skip
    /// the axis).
    pub with_neurons: fn(Option<&str>, usize) -> Option<String>,
    /// Whether trial batches should default to unique-label sampling
    /// (the linear-model inversion needs one class per sample).
    pub unique_labels: bool,
}

/// One registered defense family: how to parse and build stack parts
/// of the form `name[:args]`.
#[derive(Clone, Copy)]
pub struct DefenseFamily {
    /// Registry key (the spec prefix before `:`).
    pub name: &'static str,
    /// One-line grammar shown by `scenario --list-specs`.
    pub grammar: &'static str,
    /// Validates raw args and returns their canonical form
    /// (`None` = the family takes no args).
    pub canon: fn(Option<&str>) -> Result<Option<String>, ScenarioError>,
    /// Constructs the defense from canonical args.
    pub build: DefenseBuilder,
}

struct Registry {
    attacks: Vec<AttackFamily>,
    defenses: Vec<DefenseFamily>,
}

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        RwLock::new(Registry {
            attacks: builtin_attacks(),
            defenses: builtin_defenses(),
        })
    })
}

/// Registers an attack family. Fails if the name is already taken.
///
/// # Errors
///
/// Returns [`ScenarioError::BadSpec`] on a name collision.
pub fn register_attack_family(family: AttackFamily) -> Result<(), ScenarioError> {
    let mut reg = registry().write().expect("registry poisoned");
    if reg.attacks.iter().any(|f| f.name == family.name) {
        return Err(ScenarioError::BadSpec(format!(
            "attack family `{}` is already registered",
            family.name
        )));
    }
    reg.attacks.push(family);
    Ok(())
}

/// Registers a defense family. Fails if the name is already taken.
///
/// # Errors
///
/// Returns [`ScenarioError::BadSpec`] on a name collision.
pub fn register_defense_family(family: DefenseFamily) -> Result<(), ScenarioError> {
    let mut reg = registry().write().expect("registry poisoned");
    if reg.defenses.iter().any(|f| f.name == family.name) {
        return Err(ScenarioError::BadSpec(format!(
            "defense family `{}` is already registered",
            family.name
        )));
    }
    reg.defenses.push(family);
    Ok(())
}

/// Looks up an attack family by name.
///
/// # Errors
///
/// Returns [`ScenarioError::BadSpec`] naming the registered families
/// when `name` is unknown.
pub fn attack_family(name: &str) -> Result<AttackFamily, ScenarioError> {
    let reg = registry().read().expect("registry poisoned");
    reg.attacks
        .iter()
        .find(|f| f.name == name)
        .copied()
        .ok_or_else(|| {
            let known: Vec<&str> = reg.attacks.iter().map(|f| f.name).collect();
            ScenarioError::BadSpec(format!(
                "unknown attack `{name}` (registered: {})",
                known.join(", ")
            ))
        })
}

/// Looks up a defense family by name.
///
/// # Errors
///
/// Returns [`ScenarioError::BadSpec`] naming the registered families
/// when `name` is unknown.
pub fn defense_family(name: &str) -> Result<DefenseFamily, ScenarioError> {
    let reg = registry().read().expect("registry poisoned");
    reg.defenses
        .iter()
        .find(|f| f.name == name)
        .copied()
        .ok_or_else(|| {
            let known: Vec<&str> = reg.defenses.iter().map(|f| f.name).collect();
            ScenarioError::BadSpec(format!(
                "unknown defense `{name}` (registered: none, {})",
                known.join(", ")
            ))
        })
}

/// `(name, grammar)` of every registered attack family.
pub fn attack_families() -> Vec<(&'static str, &'static str)> {
    let reg = registry().read().expect("registry poisoned");
    reg.attacks.iter().map(|f| (f.name, f.grammar)).collect()
}

/// `(name, grammar)` of every registered defense family.
pub fn defense_families() -> Vec<(&'static str, &'static str)> {
    let reg = registry().read().expect("registry poisoned");
    reg.defenses.iter().map(|f| (f.name, f.grammar)).collect()
}

/// The full spec catalog: every registered attack and defense family
/// plus the fixed workload / codec / net / scale vocabularies, one
/// grammar line each — the text behind `scenario --list-specs`.
pub fn spec_catalog() -> String {
    let mut out = String::new();
    let mut section = |title: &str, rows: &[(&str, &str)]| {
        out.push_str(title);
        out.push('\n');
        for (name, grammar) in rows {
            out.push_str(&format!("  {name:<16} {grammar}\n"));
        }
    };
    section("attack families:", &attack_families());
    let mut defenses: Vec<(&str, &str)> = vec![(
        "none",
        "undefended baseline (aliases: wo, without; never part of a stack)",
    )];
    defenses.extend(defense_families());
    section(
        "defense families (stack with `+`, e.g. oasis:MR+dp:1,0.01):",
        &defenses,
    );
    section(
        "workloads:",
        &[
            (
                "imagenette",
                "ImageNet stand-in (Imagenette subset), 10 classes",
            ),
            ("cifar100", "CIFAR100 stand-in, 100 classes"),
            (
                "imagenette100c",
                "100-class synthetic at ImageNette resolution",
            ),
            ("cifar100c", "100-class synthetic at CIFAR resolution"),
        ],
    );
    section(
        "codecs:",
        &[
            ("raw", "lossless f32 updates"),
            ("q8", "int8 affine quantization"),
            ("topk:K", "K largest-magnitude coordinates"),
            ("sign", "1-bit sign compression"),
        ],
    );
    section(
        "nets:",
        &[
            ("ideal", "no latency, no loss"),
            (
                "sim:LAT,BW,DROP[,DL]",
                "latency ms, bandwidth Mbit/s, drop probability, straggler deadline ms",
            ),
        ],
    );
    section(
        "population (cohorts are sampled per attacked round; K peers share the victim's wire):",
        &[
            (
                "population:N",
                "deployment size the cohorts are drawn from (0 = legacy single-victim wire)",
            ),
            (
                "sample:K",
                "cohort size per round (default min(population, 64); requires a population)",
            ),
        ],
    );
    section(
        "campaigns (oasis-campaign; phases separated by `;`, fields by `+`):",
        &[
            (
                "campaign:PHASES",
                "multi-phase long-horizon run, e.g. campaign:20;30+alpha=0.5+attack=qbi:128",
            ),
            ("R", "each phase starts with its round count"),
            (
                "join=F/leave=F",
                "per-round churn probabilities over the client population",
            ),
            (
                "alpha=A",
                "Dirichlet re-partition at phase entry (label-skew drift)",
            ),
            (
                "net=SPEC",
                "phase network conditions (same grammar as nets)",
            ),
            (
                "attack=S[|S...]",
                "adversary candidates for the phase; `|` sweeps pick the worst case",
            ),
        ],
    );
    section(
        "scales:",
        &[
            ("quick", "seconds-scale smoke test"),
            ("default", "minutes-scale, preserves the paper's shape"),
            ("full", "the paper's full grids (slow on CPU)"),
        ],
    );
    out
}

// ---------------------------------------------------------------------
// Built-in families
// ---------------------------------------------------------------------

fn no_args() -> ScenarioError {
    ScenarioError::BadSpec("missing `:` arguments".into())
}

fn parse_field<T: std::str::FromStr>(
    family: &str,
    field: &str,
    value: &str,
) -> Result<T, ScenarioError> {
    value
        .trim()
        .parse()
        .map_err(|_| ScenarioError::BadSpec(format!("bad {field} `{value}` in `{family}:` spec")))
}

fn builtin_attacks() -> Vec<AttackFamily> {
    vec![
        AttackFamily {
            name: "rtf",
            grammar: "Robbing the Fed with N attacked imprint neurons (rtf:N)",
            canon: |args| {
                let neurons = parse_field::<usize>("rtf", "neurons", args.ok_or_else(no_args)?)?;
                Ok(Some(neurons.to_string()))
            },
            build: |args, calibration, _classes| {
                let neurons = parse_field::<usize>("rtf", "neurons", args.ok_or_else(no_args)?)?;
                Ok(Box::new(RtfAttack::calibrated(neurons, calibration)?))
            },
            calibration: |_| 256,
            with_neurons: |_, neurons| Some(neurons.to_string()),
            unique_labels: false,
        },
        AttackFamily {
            name: "cah",
            grammar: "Curious Abandon Honesty, N trap neurons, activation target G (cah:N[,G])",
            canon: |args| {
                let (neurons, gamma) = parse_cah(args)?;
                Ok(Some(cah_args(neurons, gamma)))
            },
            build: |args, calibration, _classes| {
                let (neurons, gamma) = parse_cah(args)?;
                Ok(Box::new(CahAttack::calibrated(
                    neurons,
                    gamma,
                    calibration,
                    CAH_WEIGHT_SEED,
                )?))
            },
            calibration: |_| 384,
            with_neurons: |args, neurons| {
                let gamma = parse_cah(args)
                    .map(|(_, g)| g)
                    .unwrap_or(DEFAULT_ACTIVATION_TARGET);
                Some(cah_args(neurons, gamma))
            },
            unique_labels: false,
        },
        AttackFamily {
            name: "qbi",
            grammar: "quantile-based bias init, N neurons tuned for batch B (qbi:N[,B])",
            canon: |args| {
                let (neurons, batch) = parse_qbi(args)?;
                Ok(Some(qbi_args(neurons, batch)))
            },
            build: |args, calibration, _classes| {
                let (neurons, batch) = parse_qbi(args)?;
                Ok(Box::new(QbiAttack::calibrated(
                    neurons,
                    batch,
                    calibration,
                    QBI_WEIGHT_SEED,
                )?))
            },
            calibration: |_| 256,
            with_neurons: |args, neurons| {
                let batch = parse_qbi(args).map(|(_, b)| b).unwrap_or(DEFAULT_QBI_BATCH);
                Some(qbi_args(neurons, batch))
            },
            unique_labels: false,
        },
        AttackFamily {
            name: "linear",
            grammar: "gradient inversion on a single-layer softmax model (no arguments)",
            canon: |args| {
                if args.is_some() {
                    return Err(ScenarioError::BadSpec("`linear` takes no arguments".into()));
                }
                Ok(None)
            },
            build: |_, _, classes| Ok(Box::new(LinearModelAttack::new(classes)?)),
            calibration: |_| 0,
            with_neurons: |_, _| None,
            unique_labels: true,
        },
    ]
}

fn parse_cah(args: Option<&str>) -> Result<(usize, f64), ScenarioError> {
    let args = args.ok_or_else(no_args)?;
    let (neurons_str, gamma_str) = match args.split_once(',') {
        Some((n, g)) => (n, Some(g)),
        None => (args, None),
    };
    let neurons = parse_field::<usize>("cah", "neurons", neurons_str)?;
    let gamma = match gamma_str {
        Some(g) => parse_field::<f64>("cah", "gamma", g)?,
        None => DEFAULT_ACTIVATION_TARGET,
    };
    Ok((neurons, gamma))
}

/// Canonical `cah` args: the default activation target is elided.
pub(crate) fn cah_args(neurons: usize, gamma: f64) -> String {
    if gamma == DEFAULT_ACTIVATION_TARGET {
        neurons.to_string()
    } else {
        format!("{neurons},{gamma}")
    }
}

fn parse_qbi(args: Option<&str>) -> Result<(usize, usize), ScenarioError> {
    let args = args.ok_or_else(no_args)?;
    let (neurons_str, batch_str) = match args.split_once(',') {
        Some((n, b)) => (n, Some(b)),
        None => (args, None),
    };
    let neurons = parse_field::<usize>("qbi", "neurons", neurons_str)?;
    let batch = match batch_str {
        Some(b) => parse_field::<usize>("qbi", "batch", b)?,
        None => DEFAULT_QBI_BATCH,
    };
    if batch < 2 {
        return Err(ScenarioError::BadSpec(format!(
            "qbi batch target must be at least 2, got `{batch}`"
        )));
    }
    Ok((neurons, batch))
}

/// Canonical `qbi` args: the default batch target is elided.
pub(crate) fn qbi_args(neurons: usize, batch: usize) -> String {
    if batch == DEFAULT_QBI_BATCH {
        neurons.to_string()
    } else {
        format!("{neurons},{batch}")
    }
}

fn builtin_defenses() -> Vec<DefenseFamily> {
    vec![
        DefenseFamily {
            name: "oasis",
            grammar:
                "OASIS additive augmentation, policy P in WO|MR|mR|SH|HFlip|VFlip|MR+SH (oasis:P)",
            canon: |args| {
                let kind = parse_policy(args)?;
                Ok(Some(kind.abbrev().to_string()))
            },
            build: |args| {
                let kind = parse_policy(args)?;
                Ok(Box::new(oasis::Oasis::new(oasis::OasisConfig::policy(
                    kind,
                ))))
            },
        },
        DefenseFamily {
            name: "ats",
            grammar: "ATSPrivacy-style transform replacement (no arguments)",
            canon: |args| {
                if args.is_some() {
                    return Err(ScenarioError::BadSpec("`ats` takes no arguments".into()));
                }
                Ok(None)
            },
            build: |_| Ok(Box::new(AtsDefense::searched())),
        },
        DefenseFamily {
            name: "dp",
            grammar: "DP-SGD update stage: per-sample clip C, noise multiplier S (dp:C,S)",
            canon: |args| {
                let (clip, noise) = parse_dp(args)?;
                Ok(Some(format!("{clip},{noise}")))
            },
            build: |args| {
                let (clip, noise) = parse_dp(args)?;
                Ok(Box::new(DpStage::new(clip, noise)))
            },
        },
        DefenseFamily {
            name: "clip",
            grammar: "clip-only update stage: bound the update's L2 norm, no noise (clip:C)",
            canon: |args| {
                let clip = parse_field::<f32>("clip", "clip", args.ok_or_else(no_args)?)?;
                if clip <= 0.0 {
                    return Err(ScenarioError::BadSpec(format!(
                        "clip bound must be positive, got `{clip}`"
                    )));
                }
                Ok(Some(clip.to_string()))
            },
            build: |args| {
                let clip = parse_field::<f32>("clip", "clip", args.ok_or_else(no_args)?)?;
                Ok(Box::new(ClipStage::new(clip)))
            },
        },
    ]
}

fn parse_policy(args: Option<&str>) -> Result<PolicyKind, ScenarioError> {
    args.ok_or_else(no_args)?
        .parse::<PolicyKind>()
        .map_err(|e| ScenarioError::BadSpec(e.to_string()))
}

fn parse_dp(args: Option<&str>) -> Result<(f32, f32), ScenarioError> {
    let args = args.ok_or_else(no_args)?;
    let (clip_str, noise_str) = args
        .split_once(',')
        .ok_or_else(|| ScenarioError::BadSpec("dp spec needs `dp:CLIP,NOISE`".into()))?;
    let clip = parse_field::<f32>("dp", "clip", clip_str)?;
    let noise = parse_field::<f32>("dp", "noise", noise_str)?;
    if clip <= 0.0 {
        return Err(ScenarioError::BadSpec(format!(
            "dp clip bound must be positive, got `{clip}`"
        )));
    }
    if noise < 0.0 {
        return Err(ScenarioError::BadSpec(format!(
            "dp noise multiplier must be non-negative, got `{noise}`"
        )));
    }
    Ok((clip, noise))
}

impl std::fmt::Debug for AttackFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for DefenseFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefenseFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_families_are_registered() {
        // Prefix assertions, not exact equality: the registry is
        // process-global and a sibling test registers extra families.
        let attacks: Vec<&str> = attack_families().iter().map(|&(n, _)| n).collect();
        assert!(
            attacks.starts_with(&["rtf", "cah", "qbi", "linear"]),
            "{attacks:?}"
        );
        let defenses: Vec<&str> = defense_families().iter().map(|&(n, _)| n).collect();
        assert!(
            defenses.starts_with(&["oasis", "ats", "dp", "clip"]),
            "{defenses:?}"
        );
    }

    #[test]
    fn unknown_families_name_the_registered_ones() {
        let err = attack_family("warp").unwrap_err().to_string();
        assert!(err.contains("rtf"), "{err}");
        let err = defense_family("dropout").unwrap_err().to_string();
        assert!(err.contains("oasis"), "{err}");
    }

    #[test]
    fn registering_a_family_makes_it_buildable() {
        // A no-op defense family registered at runtime — the
        // one-`register()`-call extension path the registry exists for.
        register_defense_family(DefenseFamily {
            name: "test-noop",
            grammar: "registered-at-runtime no-op (test only)",
            canon: |_| Ok(None),
            build: |_| Ok(Box::new(oasis_fl::IdentityPreprocessor)),
        })
        .expect("first registration succeeds");
        assert!(defense_family("test-noop").is_ok());
        // Name collisions are rejected.
        let err = register_defense_family(DefenseFamily {
            name: "test-noop",
            grammar: "",
            canon: |_| Ok(None),
            build: |_| Ok(Box::new(oasis_fl::IdentityPreprocessor)),
        });
        assert!(err.is_err());
        // And the catalog lists it.
        assert!(spec_catalog().contains("test-noop"));
    }

    #[test]
    fn catalog_names_every_dimension() {
        let catalog = spec_catalog();
        for needle in [
            "attack families:",
            "defense families",
            "workloads:",
            "codecs:",
            "nets:",
            "population",
            "scales:",
            "rtf",
            "cah",
            "linear",
            "oasis",
            "ats",
            "dp",
            "clip",
            "none",
            "topk:K",
            "sim:LAT",
            "population:N",
            "sample:K",
            "qbi",
            "campaigns",
            "campaign:PHASES",
            "alpha=A",
        ] {
            assert!(
                catalog.contains(needle),
                "catalog missing `{needle}`:\n{catalog}"
            );
        }
    }

    #[test]
    fn dp_rejects_bad_parameters() {
        assert!(parse_dp(Some("0,1")).is_err());
        assert!(parse_dp(Some("1,-2")).is_err());
        assert!(parse_dp(Some("1,0.5")).is_ok());
    }
}
