//! Property tests for the scenario spec vocabulary and engine:
//! `FromStr` ⇄ `Display` round-trips over the whole spec space, and
//! run-level determinism.

use oasis_augment::PolicyKind;
use oasis_scenario::{AttackSpec, DefenseSpec, Scale, Scenario, WorkloadSpec};
use proptest::prelude::*;

/// Strategy: any attack spec (neuron counts across the paper's grid,
/// gammas across CAH's plausible range).
fn any_attack() -> BoxedStrategy<AttackSpec> {
    prop_oneof![
        (1usize..2000).prop_map(AttackSpec::rtf).boxed(),
        (1usize..2000).prop_map(AttackSpec::cah).boxed(),
        (1usize..2000, 0.0005f64..0.5)
            .prop_map(|(neurons, gamma)| AttackSpec::cah_with_gamma(neurons, gamma))
            .boxed(),
        (0usize..1).prop_map(|_| AttackSpec::linear()).boxed(),
    ]
    .boxed()
}

/// Strategy: one single-family defense part.
fn any_defense_part() -> BoxedStrategy<DefenseSpec> {
    prop_oneof![
        (0usize..7)
            .prop_map(|i| DefenseSpec::oasis(PolicyKind::all()[i]))
            .boxed(),
        (0usize..1).prop_map(|_| DefenseSpec::ats()).boxed(),
        (0.01f32..10.0, 0.0f32..40.0)
            .prop_map(|(clip, noise)| DefenseSpec::dp(clip, noise))
            .boxed(),
        (0.01f32..10.0).prop_map(DefenseSpec::clip).boxed(),
    ]
    .boxed()
}

/// Strategy: any defense spec — `none`, a single part, or a random
/// `+`-stack of distinct families in random order.
fn any_defense() -> BoxedStrategy<DefenseSpec> {
    prop_oneof![
        (0usize..1).prop_map(|_| DefenseSpec::none()).boxed(),
        any_defense_part().boxed(),
        proptest::collection::vec(any_defense_part(), 2..5)
            .prop_map(|parts| {
                // Keep the first part of each family; order survives.
                let mut stack = DefenseSpec::none();
                for part in parts {
                    if let Ok(s) = stack.clone().stacked(part) {
                        stack = s;
                    }
                }
                stack
            })
            .boxed(),
    ]
    .boxed()
}

fn any_workload() -> BoxedStrategy<WorkloadSpec> {
    (0usize..4)
        .prop_map(|i| {
            [
                WorkloadSpec::ImageNette,
                WorkloadSpec::Cifar100,
                WorkloadSpec::ImageNette100c,
                WorkloadSpec::Cifar100c,
            ][i]
        })
        .boxed()
}

proptest! {
    /// Random stacks round-trip `FromStr` ⇄ `Display`: order is
    /// preserved (the spec value is order-sensitive and equality is
    /// exact) and the empty stack prints as `none`.
    #[test]
    fn defense_stacks_round_trip(stack in any_defense()) {
        let printed = stack.to_string();
        let parsed: DefenseSpec = printed.parse().expect("printed stack parses");
        prop_assert_eq!(&parsed, &stack, "`{}` did not round-trip", printed);
        prop_assert_eq!(parsed.families(), stack.families());
        if stack.is_none() {
            prop_assert_eq!(printed, "none");
        }
    }

    /// Stacking any part onto a stack already holding its family is
    /// rejected with a clear error naming the duplicate.
    #[test]
    fn duplicate_families_never_stack(part in any_defense_part()) {
        let family = part.families()[0].to_string();
        let err = part.clone().stacked(part).expect_err("duplicate must be rejected");
        prop_assert!(
            err.to_string().contains("duplicate") && err.to_string().contains(&family),
            "error `{}` should name duplicate family `{}`", err, family
        );
    }

    #[test]
    fn attack_specs_round_trip(spec in any_attack()) {
        let printed = spec.to_string();
        let parsed: AttackSpec = printed.parse().expect("printed spec parses");
        prop_assert_eq!(parsed, spec, "`{}` did not round-trip", printed);
    }

    #[test]
    fn defense_specs_round_trip(spec in any_defense()) {
        let printed = spec.to_string();
        let parsed: DefenseSpec = printed.parse().expect("printed spec parses");
        prop_assert_eq!(parsed, spec, "`{}` did not round-trip", printed);
    }

    #[test]
    fn workload_specs_round_trip(spec in any_workload()) {
        let printed = spec.to_string();
        let parsed: WorkloadSpec = printed.parse().expect("printed spec parses");
        prop_assert_eq!(parsed, spec, "`{}` did not round-trip", printed);
    }

    #[test]
    fn spec_strings_have_no_whitespace(
        attack in any_attack(),
        defense in any_defense(),
        workload in any_workload(),
    ) {
        // Spec strings embed in `key=value` provenance lines and CLI
        // comma lists; whitespace would break both.
        for s in [attack.to_string(), defense.to_string(), workload.to_string()] {
            prop_assert!(!s.contains(char::is_whitespace), "`{s}` contains whitespace");
        }
    }

    #[test]
    fn scenarios_serialize_and_parse_back(
        attack in any_attack(),
        defense in any_defense(),
        workload in any_workload(),
        batch in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let built = Scenario::builder()
            .attack(attack)
            .defense(defense)
            .workload(workload.linear_variant()) // 100-class: valid for every attack
            .batch_size(batch)
            .trials(1)
            .seed(seed)
            .build()
            .expect("valid scenario");
        let json = serde_json::to_string(&built).expect("serialize");
        let back: Scenario = serde_json::from_str(&json).expect("parse back");
        prop_assert_eq!(back, built);
    }
}

/// `Scenario::run` with a fixed seed reproduces identical
/// `ScenarioReport` PSNRs across two runs — including across the
/// thread-pool execution of trials.
#[test]
fn scenario_runs_are_deterministic() {
    let scenario = Scenario::builder()
        .workload(WorkloadSpec::Cifar100)
        .attack(AttackSpec::rtf(48))
        .defense(DefenseSpec::oasis(PolicyKind::MajorRotation))
        .batch_size(4)
        .trials(3)
        .scale(Scale::Quick)
        .seed(0xDE7E12)
        .calibration(48)
        .build()
        .unwrap();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a.trials.len(), b.trials.len());
    for (ta, tb) in a.trials.iter().zip(&b.trials) {
        assert_eq!(
            ta.matched_psnrs, tb.matched_psnrs,
            "trial {} diverged",
            ta.trial
        );
    }
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.leak_rate, b.leak_rate);
}

/// The DP path is deterministic too (noise comes from the trial seed).
#[test]
fn dp_scenario_runs_are_deterministic() {
    let scenario = Scenario::builder()
        .workload(WorkloadSpec::Cifar100)
        .attack(AttackSpec::rtf(32))
        .defense(DefenseSpec::dp(1.0, 0.5))
        .batch_size(4)
        .trials(2)
        .scale(Scale::Quick)
        .seed(77)
        .calibration(32)
        .build()
        .unwrap();
    let a = scenario.run().unwrap();
    let b = scenario.run().unwrap();
    assert_eq!(a.trials[0].matched_psnrs, b.trials[0].matched_psnrs);
    assert_eq!(a.summary, b.summary);
}

/// Different master seeds must actually change the drawn batches.
#[test]
fn different_seeds_draw_different_batches() {
    let base = Scenario::builder()
        .workload(WorkloadSpec::Cifar100)
        .attack(AttackSpec::rtf(32))
        .batch_size(4)
        .trials(1)
        .scale(Scale::Quick)
        .calibration(32);
    let a = base.clone().seed(1).build().unwrap().run().unwrap();
    let b = base.seed(2).build().unwrap().run().unwrap();
    assert_ne!(
        a.trials[0].matched_psnrs, b.trials[0].matched_psnrs,
        "independent seeds produced identical PSNRs"
    );
}
