//! An adaptive dishonest server sweeps its attack hyperparameters
//! against a fixed OASIS client.
//!
//! The paper argues the defense works *regardless of the attack
//! strategy* because it breaks the gradient-inversion principle
//! itself (Proposition 1), not one particular parameterization. This
//! example lets the attacker retune the number of attacked neurons
//! and switch attack families while the client keeps one policy, and
//! reports the best the adversary ever achieves — together with the
//! Proposition 1 protection rate the client can audit locally.
//!
//! Run with: `cargo run --release --example adaptive_attacker`

use oasis::{activation_set_analysis, Oasis, OasisConfig};
use oasis_attacks::{run_attack, ActiveAttack, CahAttack, RtfAttack, DEFAULT_ACTIVATION_TARGET};
use oasis_augment::PolicyKind;
use oasis_data::imagenette_like_with;
use oasis_nn::Linear;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = imagenette_like_with(16, 32, 0xADA);
    let classes = dataset.num_classes();
    let calibration: Vec<_> = dataset.items().iter().map(|it| it.image.clone()).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let batch = dataset.sample_batch(8, &mut rng);

    let oasis_defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotationShearing));
    let defense = oasis_fl::DefenseStack::of(oasis_defense.clone());
    println!("client policy fixed at MR+SH; attacker adapts:\n");
    println!(
        "{:>6} {:>8} {:>12} {:>10}",
        "attack", "neurons", "mean PSNR", "leak rate"
    );

    let mut worst_case: f64 = 0.0;
    for neurons in [64usize, 128, 256, 512] {
        let rtf = RtfAttack::calibrated(neurons, &calibration)?;
        let cah = CahAttack::calibrated(neurons, DEFAULT_ACTIVATION_TARGET, &calibration, 0xBAD)?;
        for attack in [&rtf as &dyn ActiveAttack, &cah] {
            let outcome = run_attack(attack, &batch, &defense, classes, 5)?;
            worst_case = worst_case.max(outcome.leak_rate(60.0));
            println!(
                "{:>6} {:>8} {:>12.2} {:>9.0}%",
                attack.name(),
                neurons,
                outcome.mean_psnr(),
                outcome.leak_rate(60.0) * 100.0
            );
        }
    }
    println!(
        "\nworst-case leak rate across the sweep: {:.0}%",
        worst_case * 100.0
    );

    // The client-side audit: Proposition 1 protection against the
    // strongest RTF layer the attacker tried.
    let rtf = RtfAttack::calibrated(512, &calibration)?;
    let model = rtf.build_model(batch.images[0].dims(), classes, 5)?;
    let layer = model.layer_as::<Linear>(0).expect("malicious layer");
    let audit = activation_set_analysis(layer, &batch, &oasis_defense);
    println!(
        "client-side Prop-1 audit vs RTF(512): {:.0}% of samples have an \
         activation-set twin",
        audit.protection_rate * 100.0
    );
    Ok(())
}
