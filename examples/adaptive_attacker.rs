//! An adaptive dishonest server retunes its attack against a fixed
//! OASIS client over a live campaign.
//!
//! The paper argues the defense works *regardless of the attack
//! strategy* because it breaks the gradient-inversion principle
//! itself (Proposition 1), not one particular parameterization. This
//! example hands the whole hyperparameter sweep — attack families ×
//! attacked-neuron counts — to the campaign engine's adversary
//! program (`+attack=a|b|...`): every probe round evaluates each
//! candidate against the current global model and the adversary keeps
//! whichever leaks hardest, while the client keeps one policy. The
//! client-side Proposition 1 audit from the original example stays at
//! the end.
//!
//! Run with: `cargo run --release --example adaptive_attacker`

use oasis::{activation_set_analysis, Oasis, OasisConfig};
use oasis_attacks::{ActiveAttack, RtfAttack};
use oasis_augment::PolicyKind;
use oasis_campaign::{linear_relu_factory, CampaignRunner, CampaignSetup};
use oasis_data::imagenette_like_with;
use oasis_nn::Linear;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = imagenette_like_with(64, 32, 0xADA);
    let classes = dataset.num_classes();
    let d = dataset.feature_dim();
    let calibration: Vec<_> = dataset.items().iter().map(|it| it.image.clone()).collect();

    // The adversary's whole search space rides in the phase spec: the
    // campaign probes every candidate each round and picks the worst
    // case for the defender.
    let spec = "campaign:2+attack=rtf:64|rtf:128|rtf:256|rtf:512\
                |cah:64|cah:128|cah:256|cah:512|qbi:128"
        .parse()?;
    let mut setup = CampaignSetup::new(dataset.clone(), 8, linear_relu_factory(d, 64, classes, 7));
    setup.defense = "oasis:MR+SH".parse()?;
    setup.seed = 2;
    setup.eval_every = 1;
    let mut runner = CampaignRunner::new(spec, setup)?;
    runner.run()?;

    println!("client policy fixed at MR+SH; attacker adapts:\n");
    println!(
        "{:>6} {:>9} {:>12} {:>10}",
        "round", "attack", "mean PSNR", "leak rate"
    );
    let mut worst_case: f64 = 0.0;
    for eval in runner.adversary_log() {
        worst_case = worst_case.max(eval.leak_rate);
        println!(
            "{:>6} {:>9} {:>12.2} {:>9.0}%{}",
            eval.round,
            eval.spec,
            eval.mean_psnr,
            eval.leak_rate * 100.0,
            if eval.picked { "  <- picked" } else { "" }
        );
    }
    println!(
        "\nworst-case leak rate across the adversary's program: {:.0}%",
        worst_case * 100.0
    );

    // The client-side audit: Proposition 1 protection against the
    // strongest RTF layer the attacker tried.
    let oasis_defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotationShearing));
    let mut rng = StdRng::seed_from_u64(2);
    let batch = dataset.sample_batch(8, &mut rng);
    let rtf = RtfAttack::calibrated(512, &calibration)?;
    let model = rtf.build_model(batch.images[0].dims(), classes, 5)?;
    let layer = model.layer_as::<Linear>(0).expect("malicious layer");
    let audit = activation_set_analysis(layer, &batch, &oasis_defense);
    println!(
        "client-side Prop-1 audit vs RTF(512): {:.0}% of samples have an \
         activation-set twin",
        audit.protection_rate * 100.0
    );
    Ok(())
}
