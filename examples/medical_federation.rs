//! Medical-imaging federation under an actively dishonest server.
//!
//! The paper motivates OASIS with healthcare FL: hospitals train a
//! shared diagnostic model without exchanging scans (HIPAA/GDPR), yet
//! an actively dishonest coordinator can reconstruct patient images
//! from gradient updates. This example simulates four hospital sites,
//! runs the protocol honestly to show learning progresses, then flips
//! the server to the CAH attack and compares patient-image leakage
//! with and without OASIS (MR+SH — the configuration the paper found
//! necessary against CAH).
//!
//! Run with: `cargo run --release --example medical_federation`

use oasis::{defended_client, undefended_client, OasisConfig};
use oasis_attacks::{run_attack, CahAttack, DEFAULT_ACTIVATION_TARGET};
use oasis_augment::PolicyKind;
use oasis_data::synthetic_dataset;
use oasis_fl::{partition_iid, DefenseStack, FlConfig, FlServer, ModelFactory};
use oasis_nn::{Linear, Relu, Sequential};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six scan categories ("modalities/findings"), 24 scans each at
    // 12 px — small enough that the honest-training phase converges
    // in seconds on a laptop CPU.
    let scans = synthetic_dataset("hospital-scans", 6, 24, 12, 0xD0C);
    let d = scans.feature_dim();
    let classes = scans.num_classes();

    let factory: ModelFactory = Arc::new(move || {
        let mut rng = StdRng::seed_from_u64(77);
        let mut m = Sequential::new();
        m.push(Linear::new(d, 48, &mut rng));
        m.push(Relu::new());
        m.push(Linear::new(48, classes, &mut rng));
        m
    });

    // --- Phase 1: honest training across four hospitals ---------------
    let mut rng = StdRng::seed_from_u64(5);
    let hospitals = partition_iid(&scans, 4, Arc::new(DefenseStack::identity()), &mut rng);
    let cfg = FlConfig {
        learning_rate: 0.1,
        local_batch_size: 12,
        clients_per_round: 0,
    };
    let mut server = FlServer::new(Arc::clone(&factory), cfg.clone())?;
    let reports = server.run(&hospitals, 150, 99)?;
    println!(
        "honest federation: loss {:.3} -> {:.3} over {} rounds",
        reports[0].mean_loss,
        reports.last().unwrap().mean_loss,
        reports.len()
    );

    // --- Phase 2: the coordinator turns dishonest (CAH) ---------------
    let calibration: Vec<_> = scans.items().iter().map(|it| it.image.clone()).collect();
    let attack = CahAttack::calibrated(96, DEFAULT_ACTIVATION_TARGET, &calibration, 0xBAD)?;
    let mut patient_rng = StdRng::seed_from_u64(11);
    let victim_batch = scans.sample_batch(8, &mut patient_rng);

    let undefended = run_attack(
        &attack,
        &victim_batch,
        &DefenseStack::identity(),
        classes,
        3,
    )?;
    println!("\nCAH against an undefended hospital:");
    println!(
        "  scans leaked (>60 dB): {:.0}%",
        undefended.leak_rate(60.0) * 100.0
    );
    println!("  mean matched PSNR:     {:.1} dB", undefended.mean_psnr());

    let defense = DefenseStack::of(oasis::Oasis::new(OasisConfig::policy(
        PolicyKind::MajorRotationShearing,
    )));
    let defended = run_attack(&attack, &victim_batch, &defense, classes, 3)?;
    println!("CAH against an OASIS(MR+SH) hospital:");
    println!(
        "  scans leaked (>60 dB): {:.0}%",
        defended.leak_rate(60.0) * 100.0
    );
    println!("  mean matched PSNR:     {:.1} dB", defended.mean_psnr());

    // --- Phase 3: defended hospitals still learn -----------------------
    let mut rng = StdRng::seed_from_u64(6);
    let mut shards = partition_iid(&scans, 4, Arc::new(DefenseStack::identity()), &mut rng);
    let defended_hospitals: Vec<_> = shards
        .drain(..)
        .enumerate()
        .map(|(i, c)| {
            let data = c.data().clone();
            if i % 2 == 0 {
                defended_client(
                    i,
                    data,
                    OasisConfig::policy(PolicyKind::MajorRotationShearing),
                )
            } else {
                undefended_client(i, data)
            }
        })
        .collect();
    let mut server = FlServer::new(factory, cfg)?;
    let reports = server.run(&defended_hospitals, 150, 98)?;
    println!(
        "\nmixed federation (2 defended, 2 not): loss {:.3} -> {:.3}",
        reports[0].mean_loss,
        reports.last().unwrap().mean_loss
    );
    println!("OASIS is a purely client-side defense: adopting hospitals gain");
    println!("protection without coordinating with anyone else.");
    Ok(())
}
