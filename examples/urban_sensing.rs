//! Urban environment sensing with UAV swarms — the paper's industrial
//! motivation (§I), exercised against the *linear-model* gradient
//! inversion of §IV-D.
//!
//! Sensor platforms train a lightweight single-layer classifier over
//! many scene categories (linear heads are common on embedded
//! hardware). Every batch carries distinct scene labels, which is
//! exactly the regime where class-row inversion reveals the captured
//! imagery. OASIS hides the content while DP-style noise has to trade
//! accuracy away.
//!
//! Run with: `cargo run --release --example urban_sensing`

use oasis::{Oasis, OasisConfig};
use oasis_attacks::{run_attack, train_linear_with_dp, DpConfig, LinearModelAttack};
use oasis_augment::PolicyKind;
use oasis_data::synthetic_dataset;
use oasis_fl::DefenseStack;
use rand::{rngs::StdRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 scene categories captured at 24px by the sensing swarm.
    let scenes = synthetic_dataset("urban-scenes", 40, 10, 24, 0x0AB);
    let classes = scenes.num_classes();
    let attack = LinearModelAttack::new(classes)?;

    let mut rng = StdRng::seed_from_u64(1);
    let batch = scenes.sample_batch_unique_labels(8, &mut rng);

    println!("linear-model inversion on a UAV update (B = 8, unique labels):");
    let undefended = run_attack(&attack, &batch, &DefenseStack::identity(), classes, 2)?;
    println!(
        "  without OASIS : mean PSNR {:>6.2} dB",
        undefended.mean_psnr()
    );

    for kind in [
        PolicyKind::MajorRotation,
        PolicyKind::Shearing,
        PolicyKind::HorizontalFlip,
    ] {
        let defense = DefenseStack::of(Oasis::new(OasisConfig::policy(kind)));
        let defended = run_attack(&attack, &batch, &defense, classes, 2)?;
        println!(
            "  with {:<8} : mean PSNR {:>6.2} dB",
            kind.abbrev(),
            defended.mean_psnr()
        );
    }

    // The DP alternative: how much accuracy does it cost to blur the
    // update with noise instead?
    println!("\nDP-SGD alternative on the same task (linear classifier):");
    let mut split_rng = StdRng::seed_from_u64(3);
    let (train, test) = scenes.split(0.75, &mut split_rng);
    for sigma in [0.0f32, 1.0, 10.0] {
        let cfg = DpConfig {
            clip_norm: 2.0,
            noise_multiplier: sigma,
            learning_rate: 0.8,
            epochs: 15,
            batch_size: 8,
        };
        let acc = train_linear_with_dp(&train, &test, cfg, 7)?;
        println!("  sigma {sigma:>5.1} : accuracy {:>5.1} %", acc * 100.0);
    }
    println!("\nOASIS reaches low PSNR with *zero* noise — the accuracy cost");
    println!("stays at augmentation level (paper Table I).");
    Ok(())
}
