//! Quickstart: the paper's headline result in ~60 lines.
//!
//! A dishonest federated-learning server plants the Robbing-the-Fed
//! imprint layer, a victim client computes one gradient update, and
//! the server inverts it. Without OASIS the training images come back
//! bit-perfect; with OASIS major rotation the inversion only yields
//! unrecognizable linear combinations.
//!
//! Run with: `cargo run --release --example quickstart`

use oasis::{Oasis, OasisConfig};
use oasis_attacks::{run_attack, RtfAttack};
use oasis_augment::PolicyKind;
use oasis_data::imagenette_like_with;
use oasis_fl::IdentityPreprocessor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The victim's private batch: 8 structured images (ImageNet
    // stand-in at 32 px) sampled across classes.
    use rand::{rngs::StdRng, SeedableRng};
    let dataset = imagenette_like_with(8, 32, 42);
    let batch = dataset.sample_batch(8, &mut StdRng::seed_from_u64(1));

    // The dishonest server knows coarse data statistics (it can fit
    // the measurement distribution from any public sample of the
    // domain) and plants 512 attacked neurons.
    let public_sample: Vec<_> = imagenette_like_with(16, 32, 7)
        .items()
        .iter()
        .map(|it| it.image.clone())
        .collect();
    let attack = RtfAttack::calibrated(512, &public_sample)?;

    // --- Without OASIS -------------------------------------------------
    let undefended = run_attack(&attack, &batch, &IdentityPreprocessor, 10, 1)?;
    println!("RTF without OASIS:");
    println!("  mean matched PSNR : {:>7.2} dB   (≈130–150 dB = verbatim copies)", undefended.mean_psnr());
    println!("  samples leaked    : {:>6.0} %", undefended.leak_rate(60.0) * 100.0);

    // --- With OASIS (major rotation) -----------------------------------
    let defense = Oasis::new(OasisConfig::policy(PolicyKind::MajorRotation));
    let defended = run_attack(&attack, &batch, &defense, 10, 1)?;
    println!("RTF with OASIS (MR):");
    println!("  mean matched PSNR : {:>7.2} dB   (≈15–25 dB = unrecognizable)", defended.mean_psnr());
    println!("  samples leaked    : {:>6.0} %", defended.leak_rate(60.0) * 100.0);

    // Write a before/after panel for the first sample.
    std::fs::create_dir_all("out")?;
    oasis_image::io::write_ppm("out/quickstart_original.ppm", &batch.images[0])?;
    if let Some(m) = undefended.matches.iter().find(|m| m.original_idx == 0) {
        oasis_image::io::write_ppm(
            "out/quickstart_reconstruction_undefended.ppm",
            &undefended.reconstructions[m.recon_idx],
        )?;
    }
    if let Some(m) = defended.matches.iter().find(|m| m.original_idx == 0) {
        oasis_image::io::write_ppm(
            "out/quickstart_reconstruction_defended.ppm",
            &defended.reconstructions[m.recon_idx],
        )?;
    }
    println!("\nwrote out/quickstart_*.ppm — compare the three images.");
    Ok(())
}
