//! Quickstart: the paper's headline result via the scenario engine.
//!
//! A dishonest federated-learning server plants the Robbing-the-Fed
//! imprint layer, a victim client computes one gradient update, and
//! the server inverts it. Without OASIS the training images come back
//! bit-perfect; with OASIS major rotation the inversion only yields
//! unrecognizable linear combinations.
//!
//! Each experiment is one declarative [`oasis_scenario::Scenario`]
//! value — the same engine behind every figure binary and the
//! `scenario` CLI (`cargo run -p oasis-bench --bin scenario -- --help`).
//!
//! Run with: `cargo run --release --example quickstart`

use oasis_scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The victim trains on 8 ImageNet-stand-in images; the dishonest
    // server knows coarse data statistics and plants 512 attacked
    // neurons. `defense` is the only axis that changes.
    let base = |defense: &str| -> Result<Scenario, Box<dyn std::error::Error>> {
        Ok(Scenario::builder()
            .workload("imagenette".parse()?)
            .attack("rtf:512".parse()?)
            .defense(defense.parse()?)
            .batch_size(8)
            .trials(1)
            .seed(1)
            .dataset_seed(42)
            .build()?)
    };

    // --- Without OASIS -------------------------------------------------
    let (undefended, undefended_outcomes) = base("none")?.run_detailed()?;
    println!("RTF without OASIS:");
    println!(
        "  mean matched PSNR : {:>7.2} dB   (≈130–150 dB = verbatim copies)",
        undefended.mean_psnr()
    );
    println!(
        "  samples leaked    : {:>6.0} %",
        undefended.leak_rate * 100.0
    );

    // --- With OASIS (major rotation) -----------------------------------
    let (defended, defended_outcomes) = base("oasis:MR")?.run_detailed()?;
    println!("RTF with OASIS (MR):");
    println!(
        "  mean matched PSNR : {:>7.2} dB   (≈15–25 dB = unrecognizable)",
        defended.mean_psnr()
    );
    println!(
        "  samples leaked    : {:>6.0} %",
        defended.leak_rate * 100.0
    );

    // Write a before/after panel for the first sample.
    let original = &undefended_outcomes[0];
    oasis_image::io::write_ppm(
        oasis_scenario::out_path("quickstart_original.ppm"),
        &original.processed_images[0],
    )?;
    for (outcome, file) in [
        (
            &undefended_outcomes[0],
            "quickstart_reconstruction_undefended.ppm",
        ),
        (
            &defended_outcomes[0],
            "quickstart_reconstruction_defended.ppm",
        ),
    ] {
        if let Some(m) = outcome.matches.iter().find(|m| m.original_idx == 0) {
            oasis_image::io::write_ppm(
                oasis_scenario::out_path(file),
                &outcome.reconstructions[m.recon_idx],
            )?;
        }
    }
    println!("\nwrote out/quickstart_*.ppm — compare the three images.");
    Ok(())
}
