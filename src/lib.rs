//! Workspace umbrella crate for the OASIS reproduction.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and integration tests (`tests/`) that span the member
//! crates. The actual library surface lives in the member crates:
//!
//! * [`oasis`] — the defense (the paper's contribution)
//! * [`oasis_attacks`] — RTF / CAH / QBI / linear-model attacks and baselines
//! * [`oasis_fl`] — the federated-learning protocol substrate
//! * [`oasis_campaign`] — multi-phase campaigns with churn, drift,
//!   and adaptive adversaries over the cohort runner
//! * [`oasis_wire`] — serialization, update codecs, simulated transport
//! * [`oasis_nn`] — manual-backprop neural networks
//! * [`oasis_tensor`], [`oasis_image`], [`oasis_augment`],
//!   [`oasis_data`], [`oasis_metrics`] — supporting substrates
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory.

pub use oasis;
pub use oasis_attacks;
pub use oasis_augment;
pub use oasis_campaign;
pub use oasis_data;
pub use oasis_fl;
pub use oasis_image;
pub use oasis_metrics;
pub use oasis_nn;
pub use oasis_tensor;
pub use oasis_wire;
